//! Fleet analytics: where the Top 500's carbon actually sits.
//!
//! The paper aggregates to one number; a site operator or policy maker
//! wants the carbon cut by country, vendor and accelerator family. This
//! module builds those breakdowns from the pipeline output through the
//! `frame` group-by machinery (the study's dataframe substrate).

use crate::aggregate::Aggregate;
use easyc::{
    Assessment, AssessmentOutput, CoverageReport, EasyCConfig, Interval, ScenarioDelta,
    ScenarioMatrix, ScenarioSlice, StreamOutput, SystemFootprint,
};
use frame::agg::{group_by, AggFn};
use frame::{Column, DataFrame};
use top500::list::Top500List;
use top500::stream::FleetChunks;

/// One group's share of the fleet footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupShare {
    /// Group key ("United States", "HPE", "NVIDIA", ... or "(unknown)").
    pub key: String,
    /// Systems in the group.
    pub systems: usize,
    /// Operational carbon total, MT CO2e (covered systems only).
    pub operational_mt: f64,
    /// Embodied carbon total, MT CO2e.
    pub embodied_mt: f64,
}

/// Dimension to break the fleet down by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    /// Hosting country.
    Country,
    /// System vendor.
    Vendor,
    /// Accelerator description ("(cpu-only)" for unaccelerated systems).
    Accelerator,
}

impl Dimension {
    fn label(self) -> &'static str {
        match self {
            Dimension::Country => "country",
            Dimension::Vendor => "vendor",
            Dimension::Accelerator => "accelerator",
        }
    }

    fn key_of(self, sys: &top500::record::SystemRecord) -> Option<String> {
        match self {
            Dimension::Country => sys.country.clone(),
            Dimension::Vendor => sys.vendor.clone(),
            Dimension::Accelerator => Some(
                sys.accelerator
                    .clone()
                    .unwrap_or_else(|| "(cpu-only)".to_string()),
            ),
        }
    }
}

/// Builds a dataframe `(key, operational, embodied)` from a list and its
/// footprints, then reduces it with the frame group-by.
pub fn breakdown(
    list: &Top500List,
    footprints: &[SystemFootprint],
    dimension: Dimension,
) -> Vec<GroupShare> {
    assert_eq!(
        list.len(),
        footprints.len(),
        "footprints must match the list"
    );
    let keys: Vec<Option<String>> = list.systems().iter().map(|s| dimension.key_of(s)).collect();
    let op: Vec<Option<f64>> = footprints
        .iter()
        .map(SystemFootprint::operational_mt)
        .collect();
    let emb: Vec<Option<f64>> = footprints
        .iter()
        .map(SystemFootprint::embodied_mt)
        .collect();

    let df = DataFrame::new()
        .with_column(dimension.label(), Column::Str(keys))
        .expect("fresh frame")
        .with_column("op", Column::F64(op))
        .expect("equal length")
        .with_column("emb", Column::F64(emb))
        .expect("equal length");

    let grouped = group_by(
        &df,
        dimension.label(),
        &[
            ("op", AggFn::Sum),
            ("emb", AggFn::Sum),
            ("op", AggFn::Count),
        ],
    )
    .expect("columns exist");

    let mut shares: Vec<GroupShare> = (0..grouped.len())
        .map(|i| {
            let key = match grouped.value(dimension.label(), i).expect("in range") {
                frame::Value::Str(s) => s,
                _ => "(unknown)".to_string(),
            };
            let get = |col: &str| -> f64 {
                grouped
                    .value(col, i)
                    .expect("in range")
                    .as_f64()
                    .unwrap_or(0.0)
            };
            GroupShare {
                key,
                systems: df
                    .column(dimension.label())
                    .expect("key column")
                    .as_str()
                    .expect("string column")
                    .iter()
                    .filter(|k| {
                        k.as_deref().unwrap_or("(unknown)")
                            == grouped
                                .value(dimension.label(), i)
                                .ok()
                                .and_then(|v| v.as_str().map(str::to_string))
                                .as_deref()
                                .unwrap_or("(unknown)")
                    })
                    .count(),
                operational_mt: get("op_sum"),
                embodied_mt: get("emb_sum"),
            }
        })
        .collect();
    shares.sort_by(|a, b| {
        b.operational_mt
            .partial_cmp(&a.operational_mt)
            .expect("finite")
    });
    shares
}

/// One scenario's fleet-level summary from a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub name: String,
    /// Coverage counts under the scenario.
    pub coverage: CoverageReport,
    /// Operational aggregate over covered systems.
    pub operational: Aggregate,
    /// Embodied aggregate over covered systems.
    pub embodied: Aggregate,
}

/// Sweeps a whole scenario matrix over the list in ONE interleaved session
/// pass (shared metric extraction, (scenario × chunk) items on one pool)
/// and summarises each scenario — the replacement for re-running the
/// assessment N times.
pub fn scenario_sweep(
    list: &Top500List,
    matrix: &ScenarioMatrix,
    config: EasyCConfig,
) -> Vec<ScenarioSummary> {
    summarize_slices(
        Assessment::of(list)
            .config(config)
            .scenarios(matrix)
            .run()
            .slices(),
    )
}

/// Summarises already-computed scenario slices (no re-assessment) — from
/// an [`easyc::AssessmentOutput`] or the legacy `BatchOutput`.
pub fn summarize_slices(slices: &[ScenarioSlice]) -> Vec<ScenarioSummary> {
    slices
        .iter()
        .map(|slice| {
            let op: Vec<Option<f64>> = slice
                .footprints
                .iter()
                .map(SystemFootprint::operational_mt)
                .collect();
            let emb: Vec<Option<f64>> = slice
                .footprints
                .iter()
                .map(SystemFootprint::embodied_mt)
                .collect();
            ScenarioSummary {
                name: slice.scenario.name.clone(),
                coverage: slice.coverage,
                operational: Aggregate::of(&op),
                embodied: Aggregate::of(&emb),
            }
        })
        .collect()
}

/// Summarises a *streamed* session's folded output. The streaming fold
/// accumulates exactly the sums [`Aggregate::of`] would compute over the
/// materialized footprints, so for the same systems this is bit-identical
/// to [`summarize_slices`] over an in-memory run.
pub fn summarize_stream(output: &StreamOutput) -> Vec<ScenarioSummary> {
    output
        .slices()
        .iter()
        .map(|slice| ScenarioSummary {
            name: slice.scenario.name.clone(),
            coverage: slice.coverage,
            operational: Aggregate::from_sum(
                slice.coverage.operational,
                slice.operational_total_mt,
            ),
            embodied: Aggregate::from_sum(slice.coverage.embodied, slice.embodied_total_mt),
        })
        .collect()
}

/// [`scenario_sweep`] over a chunked fleet source: the whole matrix in one
/// incremental session, memory bounded by the source's chunk budget —
/// fleets of millions of systems summarize without ever being resident.
pub fn scenario_sweep_streamed<S: FleetChunks>(
    source: S,
    matrix: &ScenarioMatrix,
    config: EasyCConfig,
) -> Result<Vec<ScenarioSummary>, S::Error> {
    Ok(summarize_stream(
        &Assessment::stream(source)
            .config(config)
            .scenarios(matrix)
            .run()?,
    ))
}

/// [`scenario_sweep_streamed`] over a CSV file ingested by `shards`
/// parallel byte-range parse workers
/// ([`top500::stream::ShardedCsvReader`]): the split is record-aligned
/// and the lanes drain in file order, so the summaries are bit-identical
/// to a serial streamed sweep of the same file — parsing just stops being
/// the single-consumer bottleneck.
pub fn scenario_sweep_sharded(
    path: &std::path::Path,
    shards: usize,
    rows_per_chunk: usize,
    matrix: &ScenarioMatrix,
    config: EasyCConfig,
) -> Result<Vec<ScenarioSummary>, top500::io::ImportError> {
    scenario_sweep_streamed(
        top500::stream::ShardedCsvReader::open(path, shards, rows_per_chunk)?,
        matrix,
        config,
    )
}

/// [`scenario_sweep_streamed`], additionally spilling every
/// per-(scenario, system) row into `writer` chunk by chunk — the full
/// columnar artifact of an in-memory `sweep --out`, at streaming memory.
/// The caller still owns the writer: call
/// [`SweepCsvWriter::finish`](crate::report::SweepCsvWriter::finish)
/// afterwards to assemble (and error-check) the artifact.
pub fn scenario_sweep_streamed_to_csv<S: FleetChunks>(
    source: S,
    matrix: &ScenarioMatrix,
    config: EasyCConfig,
    writer: &mut crate::report::SweepCsvWriter,
) -> Result<Vec<ScenarioSummary>, S::Error> {
    Ok(summarize_stream(
        &Assessment::stream(source)
            .config(config)
            .scenarios(matrix)
            .rows(|block| writer.append(&block))
            .run()?,
    ))
}

/// Renders a sweep as an aligned text table.
pub fn render_sweep(summaries: &[ScenarioSummary]) -> String {
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{}/{}", s.coverage.operational, s.coverage.total),
                format!("{}/{}", s.coverage.embodied, s.coverage.total),
                format!("{:.0}", s.operational.total_mt),
                format!("{:.0}", s.embodied.total_mt),
            ]
        })
        .collect();
    crate::render::text_table(
        &[
            "Scenario",
            "Op coverage",
            "Emb coverage",
            "Op total (MT)",
            "Emb total (MT)",
        ],
        &rows,
    )
}

/// CSV rendering of a sweep.
pub fn sweep_to_csv(summaries: &[ScenarioSummary]) -> String {
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.coverage.operational.to_string(),
                s.coverage.embodied.to_string(),
                s.coverage.total.to_string(),
                format!("{:.1}", s.operational.total_mt),
                format!("{:.1}", s.embodied.total_mt),
            ]
        })
        .collect();
    crate::render::csv_table(
        &[
            "scenario",
            "op_covered",
            "emb_covered",
            "total",
            "op_total_mt",
            "emb_total_mt",
        ],
        &rows,
    )
}

/// Paired-difference deltas of every other scenario against `baseline`,
/// matrix order — one [`AssessmentOutput::compare`] per variant. Empty
/// when the baseline is absent or the session ran without uncertainty
/// draws.
pub fn compare_to_baseline(output: &AssessmentOutput, baseline: &str) -> Vec<ScenarioDelta> {
    output
        .slices()
        .iter()
        .filter(|slice| slice.scenario.name != baseline)
        .filter_map(|slice| output.compare(baseline, &slice.scenario.name))
        .collect()
}

fn render_delta_interval(iv: &Option<Interval>) -> String {
    match iv {
        Some(iv) => format!("{:+.0} [{:+.0}, {:+.0}]", iv.point, iv.lo, iv.hi),
        None => "—".to_string(),
    }
}

/// Renders paired scenario deltas as an aligned text table — the panel
/// behind `sweep --compare` and the study's delta artifact. Each row is
/// `variant − baseline` with the CRN-paired interval per family.
pub fn render_deltas(deltas: &[ScenarioDelta]) -> String {
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .map(|d| {
            vec![
                format!("{} − {}", d.variant, d.baseline),
                render_delta_interval(&d.operational),
                render_delta_interval(&d.embodied),
                render_delta_interval(&d.total),
            ]
        })
        .collect();
    crate::render::text_table(
        &[
            "Delta (variant − baseline)",
            "Op Δ (MT)",
            "Emb Δ (MT)",
            "Total Δ (MT)",
        ],
        &rows,
    )
}

/// CSV rendering of paired scenario deltas.
pub fn deltas_to_csv(deltas: &[ScenarioDelta]) -> String {
    let cell = |iv: &Option<Interval>, pick: fn(&Interval) -> f64| -> String {
        iv.map(|iv| format!("{:.3}", pick(&iv))).unwrap_or_default()
    };
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .map(|d| {
            vec![
                d.baseline.clone(),
                d.variant.clone(),
                cell(&d.operational, |iv| iv.point),
                cell(&d.operational, |iv| iv.lo),
                cell(&d.operational, |iv| iv.hi),
                cell(&d.embodied, |iv| iv.point),
                cell(&d.embodied, |iv| iv.lo),
                cell(&d.embodied, |iv| iv.hi),
                cell(&d.total, |iv| iv.point),
                cell(&d.total, |iv| iv.lo),
                cell(&d.total, |iv| iv.hi),
            ]
        })
        .collect();
    crate::render::csv_table(
        &[
            "baseline",
            "variant",
            "op_delta_mt",
            "op_lo",
            "op_hi",
            "emb_delta_mt",
            "emb_lo",
            "emb_hi",
            "total_delta_mt",
            "total_lo",
            "total_hi",
        ],
        &rows,
    )
}

/// Concentration: fraction of the fleet's operational carbon carried by
/// the top `k` groups.
pub fn concentration(shares: &[GroupShare], k: usize) -> f64 {
    let total: f64 = shares.iter().map(|s| s.operational_mt).sum();
    if total == 0.0 {
        return 0.0;
    }
    shares.iter().take(k).map(|s| s.operational_mt).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyPipeline;

    fn setup() -> (Top500List, Vec<SystemFootprint>) {
        let out = StudyPipeline::new(500, 7).run();
        let footprints = Assessment::of(&out.full).run().into_footprints();
        (out.full, footprints)
    }

    #[test]
    fn country_breakdown_covers_fleet_total() {
        let (list, footprints) = setup();
        let shares = breakdown(&list, &footprints, Dimension::Country);
        let total: f64 = shares.iter().map(|s| s.operational_mt).sum();
        let direct: f64 = footprints
            .iter()
            .filter_map(SystemFootprint::operational_mt)
            .sum();
        assert!((total - direct).abs() < 1e-6 * direct.max(1.0));
        let systems: usize = shares.iter().map(|s| s.systems).sum();
        assert_eq!(systems, 500);
    }

    #[test]
    fn shares_sorted_descending() {
        let (list, footprints) = setup();
        let shares = breakdown(&list, &footprints, Dimension::Vendor);
        for pair in shares.windows(2) {
            assert!(pair[0].operational_mt >= pair[1].operational_mt);
        }
    }

    #[test]
    fn accelerator_dimension_has_cpu_only_group() {
        let (list, footprints) = setup();
        let shares = breakdown(&list, &footprints, Dimension::Accelerator);
        assert!(shares.iter().any(|s| s.key == "(cpu-only)"));
    }

    #[test]
    fn concentration_monotone_in_k() {
        let (list, footprints) = setup();
        let shares = breakdown(&list, &footprints, Dimension::Country);
        let c1 = concentration(&shares, 1);
        let c3 = concentration(&shares, 3);
        let call = concentration(&shares, shares.len());
        assert!(c1 <= c3 + 1e-12);
        assert!((call - 1.0).abs() < 1e-9);
        // The US share dominates in the calibrated mix.
        assert!(c1 > 0.15, "largest group share {c1}");
    }

    #[test]
    fn scenario_sweep_one_pass_matches_separate_runs() {
        use easyc::{DataScenario, MetricBit, MetricMask};
        let out = StudyPipeline::new(120, 11).run();
        let matrix =
            ScenarioMatrix::new()
                .with(DataScenario::full("full"))
                .with(DataScenario::masked(
                    "no-power",
                    MetricMask::ALL
                        .without(MetricBit::PowerKw)
                        .without(MetricBit::AnnualEnergy),
                ));
        let summaries = scenario_sweep(&out.baseline, &matrix, easyc::EasyCConfig::default());
        assert_eq!(summaries.len(), 2);
        // The "full" slice must agree with a direct assessment.
        let direct = Assessment::of(&out.baseline).run().into_footprints();
        let direct_total: f64 = direct
            .iter()
            .filter_map(SystemFootprint::operational_mt)
            .sum();
        assert_eq!(summaries[0].operational.total_mt, direct_total);
        assert_eq!(
            summaries[0].coverage,
            easyc::CoverageReport::from_footprints(&direct)
        );
        // Hiding power can only reduce operational coverage.
        assert!(summaries[1].coverage.operational <= summaries[0].coverage.operational);
        let text = render_sweep(&summaries);
        assert!(text.contains("no-power"));
        let csv = sweep_to_csv(&summaries);
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn streamed_sweep_bit_identical_to_in_memory_sweep() {
        use easyc::{DataScenario, MetricBit, MetricMask};
        use top500::stream::InMemoryChunks;
        let out = StudyPipeline::new(150, 5).run();
        let matrix =
            ScenarioMatrix::new()
                .with(DataScenario::full("full"))
                .with(DataScenario::masked(
                    "no-power",
                    MetricMask::ALL
                        .without(MetricBit::PowerKw)
                        .without(MetricBit::AnnualEnergy),
                ));
        let in_memory = scenario_sweep(&out.baseline, &matrix, easyc::EasyCConfig::default());
        for rows in [1usize, 16, 150, 1000] {
            let streamed = scenario_sweep_streamed(
                InMemoryChunks::new(&out.baseline, rows),
                &matrix,
                easyc::EasyCConfig::default(),
            )
            .unwrap();
            assert_eq!(streamed, in_memory, "rows {rows}");
        }
    }

    #[test]
    fn sharded_sweep_bit_identical_to_in_memory_sweep() {
        use easyc::{DataScenario, MetricBit, MetricMask};
        let out = StudyPipeline::new(80, 9).run();
        let text = top500::io::export_csv(&out.baseline);
        let path =
            std::env::temp_dir().join(format!("analysis-shard-sweep-{}.csv", std::process::id()));
        std::fs::write(&path, &text).expect("write temp csv");
        let matrix =
            ScenarioMatrix::new()
                .with(DataScenario::full("full"))
                .with(DataScenario::masked(
                    "no-power",
                    MetricMask::ALL
                        .without(MetricBit::PowerKw)
                        .without(MetricBit::AnnualEnergy),
                ));
        let list = top500::io::import_csv(&text).unwrap();
        let in_memory = scenario_sweep(&list, &matrix, easyc::EasyCConfig::default());
        for shards in [1usize, 3, 8] {
            for rows in [7usize, 64] {
                let sharded = scenario_sweep_sharded(
                    &path,
                    shards,
                    rows,
                    &matrix,
                    easyc::EasyCConfig::default(),
                )
                .unwrap();
                assert_eq!(sharded, in_memory, "shards {shards} rows {rows}");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn delta_panel_renders_compare_output() {
        use easyc::{DataScenario, MetricBit, MetricMask};
        let out = StudyPipeline::new(90, 3).run();
        let matrix = ScenarioMatrix::new()
            .with(DataScenario::full("full"))
            .with(DataScenario::masked(
                "no-power",
                MetricMask::ALL
                    .without(MetricBit::PowerKw)
                    .without(MetricBit::AnnualEnergy),
            ))
            .with(
                DataScenario::full("clean-grid").with_overrides(easyc::OverrideSet {
                    aci_g_per_kwh: Some(50.0),
                    ..easyc::OverrideSet::NONE
                }),
            );
        let output = Assessment::of(&out.full)
            .scenarios(&matrix)
            .uncertainty(100)
            .seed(5)
            .run();
        let deltas = compare_to_baseline(&output, "full");
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].variant, "no-power");
        assert_eq!(deltas[1].variant, "clean-grid");
        // Cleaner grid strictly lowers the operational total.
        let clean = deltas[1].operational.unwrap();
        assert!(clean.point < 0.0 && clean.hi < 0.0, "{clean:?}");
        let text = render_deltas(&deltas);
        assert!(text.contains("no-power − full"));
        assert!(text.contains("clean-grid − full"));
        let csv = deltas_to_csv(&deltas);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("baseline,variant,op_delta_mt"));
        // Without draws there is nothing to pair.
        let no_draws = Assessment::of(&out.full).scenarios(&matrix).run();
        assert!(compare_to_baseline(&no_draws, "full").is_empty());
    }

    #[test]
    fn mismatched_lengths_panic() {
        let (list, footprints) = setup();
        let result =
            std::panic::catch_unwind(|| breakdown(&list, &footprints[..10], Dimension::Country));
        assert!(result.is_err());
    }
}
