//! List-turnover simulation: the mechanism behind Figure 10.
//!
//! The paper *derives* its projection from observed turnover ("an average
//! of 48 systems was added to each new list … with this turnover comes a
//! 5 % increase in operational carbon, and 1 % increase in embodied").
//! This module implements the mechanism itself: each cycle retires the
//! bottom of the list and admits new, faster systems; the per-cycle growth
//! *emerges* from the replacement physics instead of being assumed, and the
//! tests check it lands in the paper's regime.

use crate::aggregate::Aggregate;
use easyc::{EasyC, SystemFootprint};
use top500::list::Top500List;
use top500::record::SystemRecord;
use top500::synthetic::{generate_full, SyntheticConfig};

/// Turnover parameters.
#[derive(Debug, Clone, Copy)]
pub struct TurnoverConfig {
    /// Systems replaced per cycle (paper: 48).
    pub replaced_per_cycle: u32,
    /// Rmax of a new entrant versus the incumbent at its rank position.
    /// List-level perf growth has run 1.15–1.3x/yr historically; per
    /// half-year cycle ≈ 1.1.
    pub entrant_rmax_factor: f64,
    /// Energy-efficiency improvement of new entrants (post-Dennard: slow,
    /// ~4 %/cycle) — power grows as `rmax / efficiency`.
    pub entrant_efficiency_factor: f64,
    /// Per-node performance-density improvement of new entrants (new GPU
    /// generations deliver perf with *fewer* nodes) — node counts grow as
    /// `rmax / density`, so embodied grows slower than operational.
    pub entrant_density_factor: f64,
    /// Cycles to simulate.
    pub cycles: u32,
    /// Seed.
    pub seed: u64,
}

impl Default for TurnoverConfig {
    fn default() -> TurnoverConfig {
        TurnoverConfig {
            replaced_per_cycle: 48,
            entrant_rmax_factor: 1.10,
            entrant_efficiency_factor: 1.04,
            entrant_density_factor: 1.07,
            cycles: 12, // six years, two lists per year
            seed: 0x7042_4E04_u64,
        }
    }
}

/// One simulated cycle's fleet totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleTotals {
    /// Cycle index (0 = initial list).
    pub cycle: u32,
    /// Fleet operational carbon, MT CO2e/yr.
    pub operational_mt: f64,
    /// Fleet embodied carbon, MT CO2e (in-service systems).
    pub embodied_mt: f64,
    /// Fleet Rmax, TFlop/s.
    pub rmax_tflops: f64,
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct TurnoverRun {
    /// Totals per cycle, initial list first.
    pub cycles: Vec<CycleTotals>,
}

impl TurnoverRun {
    /// Geometric-mean per-cycle growth of operational carbon.
    pub fn operational_growth_per_cycle(&self) -> f64 {
        growth_per_cycle(self.cycles.iter().map(|c| c.operational_mt))
    }

    /// Geometric-mean per-cycle growth of embodied carbon.
    pub fn embodied_growth_per_cycle(&self) -> f64 {
        growth_per_cycle(self.cycles.iter().map(|c| c.embodied_mt))
    }
}

fn growth_per_cycle(series: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = series.collect();
    if values.len() < 2 || values[0] <= 0.0 {
        return 0.0;
    }
    let n = (values.len() - 1) as f64;
    (values[values.len() - 1] / values[0]).powf(1.0 / n) - 1.0
}

/// Runs the turnover simulation on the ground-truth synthetic list.
pub fn simulate(config: &TurnoverConfig) -> TurnoverRun {
    let tool = EasyC::new();
    let mut list = generate_full(&SyntheticConfig {
        seed: config.seed,
        ..Default::default()
    });
    let mut cycles = Vec::with_capacity(config.cycles as usize + 1);
    cycles.push(totals(&tool, &list, 0));

    for cycle in 1..=config.cycles {
        list = advance_one_cycle(&list, config, cycle);
        cycles.push(totals(&tool, &list, cycle));
    }
    TurnoverRun { cycles }
}

fn totals(tool: &EasyC, list: &Top500List, cycle: u32) -> CycleTotals {
    let footprints = easyc::Assessment::of(list)
        .config(*tool.config())
        .run()
        .into_footprints();
    let op: Vec<Option<f64>> = footprints
        .iter()
        .map(SystemFootprint::operational_mt)
        .collect();
    let emb: Vec<Option<f64>> = footprints
        .iter()
        .map(SystemFootprint::embodied_mt)
        .collect();
    CycleTotals {
        cycle,
        operational_mt: Aggregate::of(&op).total_mt,
        embodied_mt: Aggregate::of(&emb).total_mt,
        rmax_tflops: list.total_rmax_tflops(),
    }
}

/// Retires the bottom `replaced_per_cycle` systems; entrants are a
/// cross-section of the list (real lists admit a few leadership machines
/// and many mid-field ones), each a next-generation version of the
/// incumbent at its rank position: more Rmax, better efficiency, higher
/// per-node density.
fn advance_one_cycle(list: &Top500List, config: &TurnoverConfig, cycle: u32) -> Top500List {
    let survivors = list.len() - config.replaced_per_cycle as usize;
    let mut systems: Vec<SystemRecord> = list.systems()[..survivors].to_vec();

    // Entrants skew mid-field: leadership machines arrive only every few
    // cycles (the real list sees ~2 new top-10 systems per *two years*),
    // so the donor cross-section starts below the top decile.
    let offset = list.len() / 10;
    let stride = (list.len() - offset) / config.replaced_per_cycle as usize;
    for i in 0..config.replaced_per_cycle as usize {
        let donor = &list.systems()[(offset + i * stride).min(list.len() - 1)];
        let mut entrant = donor.clone();
        let perf = config.entrant_rmax_factor;
        let power_scale = perf / config.entrant_efficiency_factor;
        let node_scale = perf / config.entrant_density_factor;
        entrant.rmax_tflops = donor.rmax_tflops * perf;
        entrant.rpeak_tflops = donor.rpeak_tflops * perf;
        entrant.power_kw = donor.power_kw.map(|p| p * power_scale);
        entrant.annual_energy_mwh = donor.annual_energy_mwh.map(|e| e * power_scale);
        entrant.node_count = donor
            .node_count
            .map(|n| ((n as f64) * node_scale).ceil() as u64);
        entrant.cpu_count = donor
            .cpu_count
            .map(|n| ((n as f64) * node_scale).ceil() as u64);
        entrant.accelerator_count = donor
            .accelerator_count
            .map(|n| ((n as f64) * node_scale).ceil() as u64);
        entrant.memory_gb = donor.memory_gb.map(|m| m * node_scale);
        entrant.ssd_gb = donor.ssd_gb.map(|s| s * node_scale);
        entrant.name = Some(format!("entrant-c{cycle}-{i}"));
        systems.push(entrant);
    }

    // Re-rank by Rmax, descending.
    systems.sort_by(|a, b| b.rmax_tflops.partial_cmp(&a.rmax_tflops).expect("finite"));
    for (i, s) in systems.iter_mut().enumerate() {
        s.rank = (i + 1) as u32;
    }
    Top500List::new(systems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection;

    fn run() -> TurnoverRun {
        simulate(&TurnoverConfig {
            cycles: 8,
            ..Default::default()
        })
    }

    #[test]
    fn totals_grow_monotonically() {
        let run = run();
        for pair in run.cycles.windows(2) {
            assert!(
                pair[1].operational_mt > pair[0].operational_mt * 0.99,
                "operational shrank at cycle {}",
                pair[1].cycle
            );
            assert!(pair[1].rmax_tflops > pair[0].rmax_tflops);
        }
    }

    #[test]
    fn emergent_growth_in_paper_regime() {
        // Paper: ~5 %/cycle operational, ~1 %/cycle embodied. The emergent
        // rates should land in the same regime (not assumed anywhere in
        // the simulation).
        let run = run();
        let op = run.operational_growth_per_cycle();
        let emb = run.embodied_growth_per_cycle();
        assert!((0.01..=0.12).contains(&op), "operational growth/cycle {op}");
        assert!((0.0..=0.06).contains(&emb), "embodied growth/cycle {emb}");
        assert!(
            op > emb,
            "operational should outgrow embodied (op {op}, emb {emb})"
        );
    }

    #[test]
    fn annualizing_emergent_rates_matches_projection_math() {
        let run = run();
        let op_cycle = run.operational_growth_per_cycle();
        let annual = projection::annualized(op_cycle);
        let direct = (1.0 + op_cycle).powf(2.0) - 1.0;
        assert!((annual - direct).abs() < 1e-12);
    }

    #[test]
    fn list_stays_at_500_and_ranked() {
        let config = TurnoverConfig {
            cycles: 3,
            ..Default::default()
        };
        let mut list = generate_full(&SyntheticConfig::default());
        for cycle in 1..=config.cycles {
            list = advance_one_cycle(&list, &config, cycle);
            assert_eq!(list.len(), 500);
            let ranks: Vec<u32> = list.systems().iter().map(|s| s.rank).collect();
            assert_eq!(ranks, (1..=500).collect::<Vec<_>>());
            let _ = easyc::Assessment::of(&list).run().into_footprints();
        }
    }

    #[test]
    fn entrants_enter_above_the_tail() {
        let config = TurnoverConfig::default();
        let list = generate_full(&SyntheticConfig::default());
        let next = advance_one_cycle(&list, &config, 1);
        let entrants: Vec<_> = next
            .systems()
            .iter()
            .filter(|s| s.name.as_deref().is_some_and(|n| n.starts_with("entrant")))
            .collect();
        assert_eq!(entrants.len(), 48);
        // Entrants are a cross-section: none stuck at the very bottom, and
        // a meaningful share lands in the top half of the list.
        let mean_entrant_rank =
            entrants.iter().map(|s| s.rank as f64).sum::<f64>() / entrants.len() as f64;
        assert!(
            mean_entrant_rank < 320.0,
            "entrants too low, mean rank {mean_entrant_rank}"
        );
        let top_half = entrants.iter().filter(|s| s.rank <= 250).count();
        assert!(top_half >= 10, "only {top_half} entrants in the top half");
    }
}
