//! Shape validation: does the synthetic pipeline produce a fleet whose
//! carbon *distribution* looks like the paper's?
//!
//! Absolute totals differ (our power priors vs the authors' scraped data);
//! what must match is the distributional shape — heavy-tailed, top-ranked
//! systems dominating, concentration similar. We compare in log space with
//! the Kolmogorov–Smirnov distance and the Gini coefficient.

use frame::stats::{gini, ks_statistic};

/// Shape-comparison result between two carbon series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeComparison {
    /// KS distance between the log-scaled, median-normalised samples.
    pub ks_log_normalised: f64,
    /// Gini coefficient of sample A (reference).
    pub gini_reference: f64,
    /// Gini coefficient of sample B (pipeline).
    pub gini_pipeline: f64,
}

impl ShapeComparison {
    /// Absolute difference of the concentration coefficients.
    pub fn gini_gap(&self) -> f64 {
        (self.gini_reference - self.gini_pipeline).abs()
    }
}

/// Compares two positive carbon series after log-scaling and
/// median-centering (so only the *shape* matters, not the scale).
/// Returns `None` when either series has no positive values.
pub fn compare_shapes(reference: &[f64], pipeline: &[f64]) -> Option<ShapeComparison> {
    let log_centered = |values: &[f64]| -> Option<Vec<f64>> {
        let logs: Vec<f64> = values
            .iter()
            .copied()
            .filter(|v| *v > 0.0)
            .map(f64::ln)
            .collect();
        if logs.is_empty() {
            return None;
        }
        let median = frame::stats::median(&logs)?;
        Some(logs.iter().map(|v| v - median).collect())
    };
    let a = log_centered(reference)?;
    let b = log_centered(pipeline)?;
    Some(ShapeComparison {
        ks_log_normalised: ks_statistic(&a, &b)?,
        gini_reference: gini(reference)?,
        gini_pipeline: gini(pipeline)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyPipeline;

    fn reference_operational() -> Vec<f64> {
        top500::appendix::load()
            .iter()
            .filter_map(|r| r.operational.interpolated)
            .collect()
    }

    fn reference_embodied() -> Vec<f64> {
        top500::appendix::load()
            .iter()
            .filter_map(|r| r.embodied.interpolated)
            .collect()
    }

    #[test]
    fn identical_series_compare_perfectly() {
        let a = reference_operational();
        let cmp = compare_shapes(&a, &a).unwrap();
        assert_eq!(cmp.ks_log_normalised, 0.0);
        assert_eq!(cmp.gini_gap(), 0.0);
    }

    #[test]
    fn scale_invariance() {
        let a = reference_operational();
        let scaled: Vec<f64> = a.iter().map(|v| v * 2.8).collect();
        let cmp = compare_shapes(&a, &scaled).unwrap();
        // Log-centering cancels the scale up to floating-point tie-breaks
        // at repeated values (a few CDF steps on 500 points).
        assert!(cmp.ks_log_normalised < 0.02, "{}", cmp.ks_log_normalised);
        assert!(cmp.gini_gap() < 1e-9);
    }

    #[test]
    fn pipeline_operational_shape_close_to_paper() {
        let out = StudyPipeline::new(500, 0x5EED_CAFE).run();
        let cmp = compare_shapes(&reference_operational(), &out.operational_interpolated).unwrap();
        // Same heavy-tail family: KS below 0.45 in log space, concentration
        // within 0.25. (Identical data would be 0; unrelated distributions
        // typically exceed 0.6.)
        assert!(cmp.ks_log_normalised < 0.45, "KS {}", cmp.ks_log_normalised);
        assert!(cmp.gini_gap() < 0.25, "gini gap {}", cmp.gini_gap());
    }

    #[test]
    fn pipeline_embodied_shape_close_to_paper() {
        let out = StudyPipeline::new(500, 0x5EED_CAFE).run();
        let cmp = compare_shapes(&reference_embodied(), &out.embodied_interpolated).unwrap();
        assert!(cmp.ks_log_normalised < 0.5, "KS {}", cmp.ks_log_normalised);
        assert!(cmp.gini_gap() < 0.3, "gini gap {}", cmp.gini_gap());
    }

    #[test]
    fn reference_is_heavy_tailed() {
        // The paper's fleet concentrates carbon in few systems.
        let g = frame::stats::gini(&reference_operational()).unwrap();
        assert!(g > 0.4, "reference gini {g}");
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(compare_shapes(&[], &[1.0]).is_none());
        assert!(compare_shapes(&[0.0, -1.0], &[1.0]).is_none());
    }
}
