//! Projections of the Top 500 footprint through 2030 (Figures 10 and 11).
//!
//! The paper derives growth from list turnover: "An average of 48 systems
//! was added to each new list in each cycle, over the past two years. With
//! this turnover comes a 5 % increase in operational carbon, and 1 %
//! increase in embodied. Annualized, this is 10.3 % growth in operational
//! and 2 % growth in embodied carbon." (Two lists per year.)

/// Lists published per year.
pub(crate) const CYCLES_PER_YEAR: f64 = 2.0;

/// Systems replaced per cycle (paper's observed turnover).
pub const SYSTEMS_ADDED_PER_CYCLE: f64 = 48.0;

/// Operational carbon growth per cycle.
pub const OP_GROWTH_PER_CYCLE: f64 = 0.05;

/// Embodied carbon growth per cycle.
pub const EMB_GROWTH_PER_CYCLE: f64 = 0.01;

/// Base year of the projection.
pub(crate) const BASE_YEAR: u32 = 2024;

/// Final projected year.
pub(crate) const END_YEAR: u32 = 2030;

/// Annualises a per-cycle growth rate: `(1+r)^cycles − 1`.
pub fn annualized(cycle_growth: f64) -> f64 {
    (1.0 + cycle_growth).powf(CYCLES_PER_YEAR) - 1.0
}

/// One projected year.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedYear {
    /// Calendar year.
    pub year: u32,
    /// Projected value (MT CO2e for carbon; PFlops/kMT for ratios).
    pub value: f64,
}

/// A named projection series.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionSeries {
    /// Series label.
    pub label: String,
    /// Year/value points, base year first.
    pub points: Vec<ProjectedYear>,
}

impl ProjectionSeries {
    /// Value at `year`, if projected.
    pub fn at(&self, year: u32) -> Option<f64> {
        self.points.iter().find(|p| p.year == year).map(|p| p.value)
    }

    /// Ratio of the final to the first value.
    pub fn overall_growth(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) if first.value != 0.0 => last.value / first.value,
            _ => f64::NAN,
        }
    }
}

/// Geometric projection from `base` at `annual_rate` over the study years.
pub(crate) fn project(label: &str, base: f64, annual_rate: f64) -> ProjectionSeries {
    let points = (BASE_YEAR..=END_YEAR)
        .map(|year| ProjectedYear {
            year,
            value: base * (1.0 + annual_rate).powi((year - BASE_YEAR) as i32),
        })
        .collect();
    ProjectionSeries {
        label: label.to_string(),
        points,
    }
}

/// The full Figure 10 projection pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// Operational carbon series (Figure 10a), MT CO2e.
    pub operational: ProjectionSeries,
    /// Embodied carbon series (Figure 10b), MT CO2e.
    pub embodied: ProjectionSeries,
}

/// Builds Figure 10 from base-year totals using the turnover-derived rates.
pub fn figure10(op_total_2024_mt: f64, emb_total_2024_mt: f64) -> Projection {
    Projection {
        operational: project(
            "Operational Carbon (projected)",
            op_total_2024_mt,
            annualized(OP_GROWTH_PER_CYCLE),
        ),
        embodied: project(
            "Embodied Carbon (projected)",
            emb_total_2024_mt,
            annualized(EMB_GROWTH_PER_CYCLE),
        ),
    }
}

/// Figure 11: performance-to-carbon ratio, projected and ideal.
///
/// The paper reports the projected ratio improving at ≈0.2 PFlop/s per
/// thousand MT CO2e per year — dramatically slower than the Dennard-era
/// ideal of 2× every 18 months (plotted for comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPerCarbon {
    /// Projected ratio series, PFlops per kMT CO2e.
    pub projected: ProjectionSeries,
    /// Ideal Dennard-scaling series from the same base.
    pub ideal: ProjectionSeries,
}

/// Annual linear improvement of the projected ratio (paper §IV-C).
pub(crate) const RATIO_LINEAR_GROWTH_PER_YEAR: f64 = 0.2;

/// Builds one panel of Figure 11 from the 2024 list performance and carbon.
pub fn figure11(total_pflops_2024: f64, carbon_kmt_2024: f64) -> PerfPerCarbon {
    let base_ratio = total_pflops_2024 / carbon_kmt_2024;
    let projected = ProjectionSeries {
        label: "Projected".to_string(),
        points: (BASE_YEAR..=END_YEAR)
            .map(|year| ProjectedYear {
                year,
                value: base_ratio + RATIO_LINEAR_GROWTH_PER_YEAR * f64::from(year - BASE_YEAR),
            })
            .collect(),
    };
    let ideal = ProjectionSeries {
        label: "Ideal".to_string(),
        points: (BASE_YEAR..=END_YEAR)
            .map(|year| ProjectedYear {
                year,
                value: base_ratio * 2.0_f64.powf(f64::from(year - BASE_YEAR) / 1.5),
            })
            .collect(),
    };
    PerfPerCarbon { projected, ideal }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annualized_matches_paper_rates() {
        // 5 %/cycle → 10.25 % ≈ paper's 10.3 %/yr.
        assert!((annualized(OP_GROWTH_PER_CYCLE) - 0.103).abs() < 0.001);
        // 1 %/cycle → 2.01 % ≈ paper's 2 %/yr.
        assert!((annualized(EMB_GROWTH_PER_CYCLE) - 0.0201).abs() < 0.001);
    }

    #[test]
    fn operational_nearly_doubles_by_2030() {
        // Paper: "By 2030, Top 500's operational carbon is nearly double
        // that of 2024" (1.8×).
        let p = figure10(1.39e6, 1.88e6);
        let growth = p.operational.overall_growth();
        assert!((growth - 1.8).abs() < 0.05, "growth {growth}");
    }

    #[test]
    fn embodied_reaches_1_1x() {
        let p = figure10(1.39e6, 1.88e6);
        let growth = p.embodied.overall_growth();
        assert!((growth - 1.13).abs() < 0.03, "growth {growth}");
    }

    #[test]
    fn seven_points_2024_to_2030() {
        let p = figure10(1.0, 1.0);
        assert_eq!(p.operational.points.len(), 7);
        assert_eq!(p.operational.points[0].year, 2024);
        assert_eq!(p.operational.points[6].year, 2030);
    }

    #[test]
    fn projection_at_year() {
        let p = figure10(1000.0, 1000.0);
        assert_eq!(p.operational.at(2024), Some(1000.0));
        assert!(p.operational.at(2031).is_none());
    }

    #[test]
    fn ideal_dwarfs_projected_by_2030() {
        // The gap between Dennard-ideal and reality is the figure's point:
        // ideal is 2^(6/1.5) = 16x by 2030; projected is only slightly up.
        let panel = figure11(11_700.0, 1393.7);
        let base = panel.projected.at(2024).unwrap();
        let ideal_2030 = panel.ideal.at(2030).unwrap();
        let proj_2030 = panel.projected.at(2030).unwrap();
        assert!((ideal_2030 / base - 16.0).abs() < 0.01);
        assert!(proj_2030 < base * 1.3);
        assert!(ideal_2030 > proj_2030 * 10.0);
    }

    #[test]
    fn projected_ratio_grows_linearly() {
        let panel = figure11(11_700.0, 1393.7);
        let base = panel.projected.at(2024).unwrap();
        let next = panel.projected.at(2025).unwrap();
        assert!((next - base - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ratio_growth_cannot_offset_total_growth() {
        // Paper: "the current increase in performance / unit carbon is not
        // sufficient to compensate for the rapid growth in the use of
        // computing" — total carbon still rises 10.3 %/yr.
        let p = figure10(1.39e6, 1.88e6);
        for pair in p.operational.points.windows(2) {
            assert!(pair[1].value > pair[0].value);
        }
    }
}
