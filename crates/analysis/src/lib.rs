#![warn(missing_docs)]

//! `analysis` — the study pipelines that regenerate every table and figure
//! of the paper.
//!
//! Two data sources feed the figures:
//!
//! 1. **Reference**: the embedded appendix Table II ([`top500::appendix`]) —
//!    the paper's own per-system results, from which the aggregate figures
//!    (3, 7, 8, 9) and headline numbers are recomputed *exactly*.
//! 2. **Pipeline**: the synthetic Top 500 run end-to-end through EasyC
//!    ([`pipeline`]), which regenerates the coverage figures (2, 4, 5, 6,
//!    Table I) and validates that the model produces the paper's shapes
//!    from raw data.
//!
//! Module map (see DESIGN.md §4 for the experiment index):
//! [`interpolate`] (nearest-10-peer fill), [`aggregate`] (totals +
//! equivalences), [`sensitivity`] (Figure 9), [`projection`] (Figures 10,
//! 11), [`figures`] (one generator per figure/table), [`render`] (text
//! tables), [`report`] (run everything, write artifacts).

pub mod aggregate;
pub mod figures;
pub mod fleet;
pub mod interpolate;
pub mod pipeline;
pub mod projection;
pub mod render;
pub mod report;
pub mod sensitivity;
pub mod turnover;
pub mod validate;

pub use aggregate::{Aggregate, Equivalences};
pub use interpolate::nearest_peer_interpolation;
pub use pipeline::{PipelineOutput, StudyPipeline};
pub use projection::{Projection, ProjectionSeries};
pub use sensitivity::SensitivityReport;
