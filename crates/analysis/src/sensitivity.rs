//! Sensitivity of the footprint to adding public information (Figure 9).
//!
//! For every system with estimates under both scenarios the per-rank
//! difference is reported; the aggregate deltas reproduce the paper's
//! headline findings: operational changes only +2.85 % (≈38 kMT) in total,
//! while embodied grows by ≈670 kMT (+78 %), dominated by systems that had
//! no estimate at all under the baseline.

use top500::appendix::AppendixRow;

/// Per-rank difference between scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankDiff {
    /// Top 500 rank.
    pub rank: u32,
    /// `+public − top500`, MT CO2e; `None` when either side is missing.
    pub diff_mt: Option<f64>,
}

/// The full sensitivity study for one output (operational or embodied).
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// Per-rank diffs (both-scenario systems only carry values).
    pub diffs: Vec<RankDiff>,
    /// Total under the baseline scenario, MT.
    pub baseline_total_mt: f64,
    /// Total under the enriched scenario, MT.
    pub enriched_total_mt: f64,
    /// Systems estimable only after enrichment.
    pub newly_covered: usize,
    /// Largest single-system increase, MT.
    pub max_increase_mt: f64,
    /// Largest single-system decrease, MT (negative or zero).
    pub max_decrease_mt: f64,
    /// Paired-difference interval on the fleet-total change, MT — filled
    /// by [`between`] when the session ran with uncertainty draws (common
    /// random numbers pair the scenarios' draws, so this band is far
    /// tighter than differencing two independent per-scenario intervals).
    /// `None` for point-estimate-only sources (appendix rows, raw
    /// footprint slices, sessions without draws).
    pub delta_interval: Option<easyc::Interval>,
}

impl SensitivityReport {
    /// Net change from enrichment, MT CO2e.
    pub fn total_change_mt(&self) -> f64 {
        self.enriched_total_mt - self.baseline_total_mt
    }

    /// Net change relative to the baseline total.
    pub fn relative_change(&self) -> f64 {
        if self.baseline_total_mt == 0.0 {
            0.0
        } else {
            self.total_change_mt() / self.baseline_total_mt
        }
    }
}

/// Builds the report from appendix scenario pairs.
pub fn from_scenarios(pairs: &[(u32, Option<f64>, Option<f64>)]) -> SensitivityReport {
    let mut diffs = Vec::with_capacity(pairs.len());
    let mut baseline_total = 0.0;
    let mut enriched_total = 0.0;
    let mut newly_covered = 0;
    let mut max_increase = f64::NEG_INFINITY;
    let mut max_decrease = f64::INFINITY;
    for &(rank, baseline, enriched) in pairs {
        if let Some(b) = baseline {
            baseline_total += b;
        }
        if let Some(e) = enriched {
            enriched_total += e;
        }
        if baseline.is_none() && enriched.is_some() {
            newly_covered += 1;
        }
        let diff = match (baseline, enriched) {
            (Some(b), Some(e)) => {
                let d = e - b;
                max_increase = max_increase.max(d);
                max_decrease = max_decrease.min(d);
                Some(d)
            }
            _ => None,
        };
        diffs.push(RankDiff {
            rank,
            diff_mt: diff,
        });
    }
    SensitivityReport {
        diffs,
        baseline_total_mt: baseline_total,
        enriched_total_mt: enriched_total,
        newly_covered,
        max_increase_mt: if max_increase.is_finite() {
            max_increase
        } else {
            0.0
        },
        max_decrease_mt: if max_decrease.is_finite() {
            max_decrease
        } else {
            0.0
        },
        delta_interval: None,
    }
}

/// Builds a report from two batch-assessed footprint slices of the same
/// list (e.g. two [`easyc::ScenarioSlice`]s), so scenario sensitivity
/// studies run off ONE batch pass instead of bespoke re-runs. `embodied`
/// selects which output is compared.
pub fn from_footprints(
    baseline: &[easyc::SystemFootprint],
    enriched: &[easyc::SystemFootprint],
    embodied: bool,
) -> SensitivityReport {
    assert_eq!(
        baseline.len(),
        enriched.len(),
        "slices must cover the same list"
    );
    let pick = |fp: &easyc::SystemFootprint| -> Option<f64> {
        if embodied {
            fp.embodied_mt()
        } else {
            fp.operational_mt()
        }
    };
    let pairs: Vec<_> = baseline
        .iter()
        .zip(enriched)
        .map(|(b, e)| {
            debug_assert_eq!(b.rank, e.rank);
            (b.rank, pick(b), pick(e))
        })
        .collect();
    from_scenarios(&pairs)
}

/// Sensitivity between two named scenarios of one [`easyc::Assessment`]
/// session output: `variant − baseline` per rank, so what-if questions
/// ("what does losing measured power cost?") read straight off a single
/// session run. Returns `None` when either scenario is absent.
///
/// When the session ran with uncertainty draws, the report's
/// `delta_interval` carries the paired common-random-numbers interval on
/// the fleet-total change for the selected family (operational or
/// embodied) — the same band [`easyc::AssessmentOutput::compare`] reports.
pub fn between(
    output: &easyc::AssessmentOutput,
    baseline: &str,
    variant: &str,
    embodied: bool,
) -> Option<SensitivityReport> {
    let mut report = from_footprints(
        output.footprints(baseline)?,
        output.footprints(variant)?,
        embodied,
    );
    report.delta_interval = output.compare(baseline, variant).and_then(|delta| {
        if embodied {
            delta.embodied
        } else {
            delta.operational
        }
    });
    Some(report)
}

/// Operational sensitivity from appendix rows.
pub fn operational(rows: &[AppendixRow]) -> SensitivityReport {
    let pairs: Vec<_> = rows
        .iter()
        .map(|r| (r.rank, r.operational.top500, r.operational.public))
        .collect();
    from_scenarios(&pairs)
}

/// Embodied sensitivity from appendix rows.
pub fn embodied(rows: &[AppendixRow]) -> SensitivityReport {
    let pairs: Vec<_> = rows
        .iter()
        .map(|r| (r.rank, r.embodied.top500, r.embodied.public))
        .collect();
    from_scenarios(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operational_matches_paper_2_85_percent() {
        let rows = top500::appendix::load();
        let report = operational(&rows);
        // Paper: "the total change for the entire Top 500 is only 2.85 %
        // (38 thousand MT CO2e)".
        assert!(
            (report.relative_change() - 0.0285).abs() < 0.002,
            "relative {}",
            report.relative_change()
        );
        assert!(
            (report.total_change_mt() / 1000.0 - 38.0).abs() < 2.0,
            "total change {} kMT",
            report.total_change_mt() / 1000.0
        );
        assert_eq!(report.newly_covered, 490 - 391);
    }

    #[test]
    fn embodied_matches_paper_670_kmt() {
        let rows = top500::appendix::load();
        let report = embodied(&rows);
        // Paper: "an increase of 670.48 thousand MT CO2e, for an 78 % change".
        assert!(
            (report.total_change_mt() / 1000.0 - 670.48).abs() < 2.0,
            "total change {} kMT",
            report.total_change_mt() / 1000.0
        );
        assert!(
            (report.relative_change() - 0.78).abs() < 0.01,
            "relative {}",
            report.relative_change()
        );
        assert_eq!(report.newly_covered, 404 - 283);
    }

    #[test]
    fn aci_refinement_spread_within_77_5_percent_band() {
        // Paper: refinement to national ACI "can increase or decrease by as
        // much as 77.5 %". Check the per-system relative operational change
        // of both-covered systems stays within roughly that band.
        let rows = top500::appendix::load();
        let mut max_rel: f64 = 0.0;
        for r in &rows {
            if let (Some(b), Some(e)) = (r.operational.top500, r.operational.public) {
                if b > 100.0 {
                    max_rel = max_rel.max(((e - b) / b).abs());
                }
            }
        }
        assert!(max_rel <= 0.80, "max relative change {max_rel}");
        assert!(
            max_rel >= 0.5,
            "expected some large refinements, max {max_rel}"
        );
    }

    #[test]
    fn diffs_have_one_entry_per_rank() {
        let rows = top500::appendix::load();
        let report = operational(&rows);
        assert_eq!(report.diffs.len(), 500);
        assert_eq!(report.diffs[0].rank, 1);
    }

    #[test]
    fn embodied_changes_mostly_increase() {
        // Paper: "For embodied carbon, there are larger changes, mostly
        // increasing the carbon footprint".
        let rows = top500::appendix::load();
        let report = embodied(&rows);
        let increases = report
            .diffs
            .iter()
            .filter(|d| d.diff_mt.is_some_and(|v| v > 0.0))
            .count();
        let decreases = report
            .diffs
            .iter()
            .filter(|d| d.diff_mt.is_some_and(|v| v < 0.0))
            .count();
        assert!(
            increases > decreases,
            "increases {increases} vs decreases {decreases}"
        );
    }

    #[test]
    fn footprint_report_matches_scenario_slices() {
        use crate::pipeline::StudyPipeline;
        let out = StudyPipeline::new(100, 13).run();
        let report = from_footprints(
            &out.baseline_results.footprints,
            &out.enriched_results.footprints,
            false,
        );
        assert_eq!(report.diffs.len(), 100);
        let manual_newly = out
            .baseline_results
            .footprints
            .iter()
            .zip(&out.enriched_results.footprints)
            .filter(|(b, e)| b.operational_mt().is_none() && e.operational_mt().is_some())
            .count();
        assert_eq!(report.newly_covered, manual_newly);
        assert!(manual_newly > 0, "enrichment should cover new systems");
        assert!(report.enriched_total_mt >= report.baseline_total_mt);
    }

    #[test]
    fn between_reads_session_scenarios() {
        use easyc::{Assessment, DataScenario, MetricBit, MetricMask, ScenarioMatrix};
        use top500::synthetic::{generate_full, SyntheticConfig};
        let list = generate_full(&SyntheticConfig {
            n: 60,
            ..Default::default()
        });
        let matrix =
            ScenarioMatrix::new()
                .with(DataScenario::full("full"))
                .with(DataScenario::masked(
                    "no-power",
                    MetricMask::ALL
                        .without(MetricBit::PowerKw)
                        .without(MetricBit::AnnualEnergy),
                ));
        let output = Assessment::of(&list).scenarios(&matrix).run();
        let report = between(&output, "full", "no-power", false).unwrap();
        assert_eq!(report.diffs.len(), 60);
        let manual = from_footprints(
            output.footprints("full").unwrap(),
            output.footprints("no-power").unwrap(),
            false,
        );
        assert_eq!(report, manual);
        assert!(between(&output, "full", "missing", false).is_none());
        // No uncertainty draws: no interval-backed delta.
        assert!(report.delta_interval.is_none());
    }

    #[test]
    fn between_carries_paired_delta_interval_when_session_has_draws() {
        use easyc::{Assessment, DataScenario, MetricBit, MetricMask, ScenarioMatrix};
        use top500::synthetic::{generate_full, SyntheticConfig};
        let list = generate_full(&SyntheticConfig {
            n: 80,
            ..Default::default()
        });
        let matrix =
            ScenarioMatrix::new()
                .with(DataScenario::full("full"))
                .with(DataScenario::masked(
                    "no-power",
                    MetricMask::ALL
                        .without(MetricBit::PowerKw)
                        .without(MetricBit::AnnualEnergy),
                ));
        let output = Assessment::of(&list)
            .scenarios(&matrix)
            .uncertainty(150)
            .confidence(0.9)
            .seed(13)
            .run();
        let op = between(&output, "full", "no-power", false).unwrap();
        let delta = output.compare("full", "no-power").unwrap();
        assert_eq!(op.delta_interval, delta.operational);
        let iv = op.delta_interval.unwrap();
        // The interval brackets the point-estimate change of the report.
        assert!((iv.point - op.total_change_mt()).abs() < 1e-9 * iv.point.abs().max(1.0));
        assert!(iv.lo <= iv.point && iv.point <= iv.hi);
        let emb = between(&output, "full", "no-power", true).unwrap();
        assert_eq!(emb.delta_interval, delta.embodied);
    }

    #[test]
    fn synthetic_report_totals() {
        let pairs = vec![
            (1, Some(100.0), Some(110.0)),
            (2, None, Some(50.0)),
            (3, Some(20.0), Some(20.0)),
        ];
        let report = from_scenarios(&pairs);
        assert_eq!(report.baseline_total_mt, 120.0);
        assert_eq!(report.enriched_total_mt, 180.0);
        assert_eq!(report.newly_covered, 1);
        assert_eq!(report.max_increase_mt, 10.0);
        assert_eq!(report.max_decrease_mt, 0.0);
    }
}
