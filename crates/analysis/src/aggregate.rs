//! Totals, averages and real-world equivalences (paper §IV-B).

/// Annual emissions of one gasoline passenger vehicle, MT CO2e. Calibrated
/// to the paper's own equivalences: 1.39 M MT ↔ 325 k vehicles and
/// 1.88 M MT ↔ 439 k vehicles both give ≈ 4.28 MT/vehicle (≈ 400 g/mile ×
/// 10,700 miles).
pub(crate) const VEHICLE_MT_PER_YEAR: f64 = 4.28;

/// Grams CO2e per vehicle mile (EPA passenger-fleet average).
pub(crate) const GRAMS_PER_VEHICLE_MILE: f64 = 400.0;

/// Annual electricity emissions of a typical home, MT CO2e.
pub(crate) const HOME_MT_PER_YEAR: f64 = 4.0;

/// Empty (and vectorised) float reductions can legally yield `-0.0` — the
/// additive identity LLVM uses for fadd reductions — which then renders as
/// `-0` in reports. Collapse it to positive zero.
fn normalize_zero(total: f64) -> f64 {
    if total == 0.0 {
        0.0
    } else {
        total
    }
}

/// Totals over a carbon series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of systems contributing.
    pub count: usize,
    /// Total, MT CO2e.
    pub total_mt: f64,
    /// Mean per system, MT CO2e.
    pub mean_mt: f64,
}

impl Aggregate {
    /// Aggregates the present values of a series.
    pub fn of(values: &[Option<f64>]) -> Aggregate {
        let present: Vec<f64> = values.iter().flatten().copied().collect();
        let total = normalize_zero(present.iter().sum());
        Aggregate {
            count: present.len(),
            total_mt: total,
            mean_mt: if present.is_empty() {
                0.0
            } else {
                total / present.len() as f64
            },
        }
    }

    /// Builds an aggregate from an already-folded `(count, total)` pair —
    /// the entry point for streamed sessions, whose running totals repeat
    /// the exact sum [`Aggregate::of`] would compute. Applies the same
    /// zero normalisation and empty-mean policy as the series
    /// constructors, so the two paths share one policy.
    pub fn from_sum(count: usize, total: f64) -> Aggregate {
        let total = normalize_zero(total);
        Aggregate {
            count,
            total_mt: total,
            mean_mt: if count == 0 {
                0.0
            } else {
                total / count as f64
            },
        }
    }

    /// Real-world equivalences for the total.
    pub fn equivalences(&self) -> Equivalences {
        Equivalences::of_mt(self.total_mt)
    }
}

/// Real-world framing of a carbon quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Equivalences {
    /// Gasoline vehicles driven for one year.
    pub vehicles: f64,
    /// Vehicle miles driven.
    pub vehicle_miles: f64,
    /// Homes' annual electricity use.
    pub homes: f64,
}

impl Equivalences {
    /// Equivalences of `mt` MT CO2e.
    pub fn of_mt(mt: f64) -> Equivalences {
        Equivalences {
            vehicles: mt / VEHICLE_MT_PER_YEAR,
            vehicle_miles: mt * 1.0e6 / GRAMS_PER_VEHICLE_MILE,
            homes: mt / HOME_MT_PER_YEAR,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_skips_missing() {
        let agg = Aggregate::of(&[Some(10.0), None, Some(30.0)]);
        assert_eq!(agg.count, 2);
        assert_eq!(agg.total_mt, 40.0);
        assert_eq!(agg.mean_mt, 20.0);
    }

    #[test]
    fn empty_aggregate() {
        let agg = Aggregate::of(&[None, None]);
        assert_eq!(agg.count, 0);
        assert_eq!(agg.mean_mt, 0.0);
    }

    #[test]
    fn paper_operational_vehicle_equivalence() {
        // 1.39 M MT CO2e ↔ ≈ 325 k vehicles (paper abstract).
        let eq = Equivalences::of_mt(1.39e6);
        assert!(
            (eq.vehicles / 325_000.0 - 1.0).abs() < 0.01,
            "{}",
            eq.vehicles
        );
        // and ≈ 3.5 billion vehicle miles.
        assert!(
            (eq.vehicle_miles / 3.5e9 - 1.0).abs() < 0.01,
            "{}",
            eq.vehicle_miles
        );
    }

    #[test]
    fn paper_embodied_vehicle_equivalence() {
        // 1.88 M MT CO2e ↔ ≈ 439 k vehicles and ≈ 4.8 G passenger miles.
        let eq = Equivalences::of_mt(1.88e6);
        assert!(
            (eq.vehicles / 439_000.0 - 1.0).abs() < 0.01,
            "{}",
            eq.vehicles
        );
        assert!(
            (eq.vehicle_miles / 4.8e9 - 1.0).abs() < 0.03,
            "{}",
            eq.vehicle_miles
        );
    }

    #[test]
    fn average_system_is_thousands_of_homes_scale() {
        // Fig 8b caption: each system averages thousands of MT CO2e,
        // "comparable to that of thousands of homes".
        let rows = top500::appendix::load();
        let op: Vec<Option<f64>> = rows.iter().map(|r| r.operational.interpolated).collect();
        let agg = Aggregate::of(&op);
        let homes_per_system = Equivalences::of_mt(agg.mean_mt).homes;
        assert!(
            homes_per_system > 300.0 && homes_per_system < 3000.0,
            "{homes_per_system}"
        );
    }

    #[test]
    fn appendix_totals_and_averages_fig7() {
        // Fig 7: totals 1.37 M (covered) → 1.39 M (interpolated) operational;
        // 1.53 M → 1.88 M embodied. Averages in the low thousands.
        let rows = top500::appendix::load();
        let op_p: Vec<Option<f64>> = rows.iter().map(|r| r.operational.public).collect();
        let op_i: Vec<Option<f64>> = rows.iter().map(|r| r.operational.interpolated).collect();
        let emb_p: Vec<Option<f64>> = rows.iter().map(|r| r.embodied.public).collect();
        let emb_i: Vec<Option<f64>> = rows.iter().map(|r| r.embodied.interpolated).collect();
        let (a, b, c, d) = (
            Aggregate::of(&op_p),
            Aggregate::of(&op_i),
            Aggregate::of(&emb_p),
            Aggregate::of(&emb_i),
        );
        assert_eq!((a.count, b.count, c.count, d.count), (490, 500, 404, 500));
        assert!(b.total_mt > a.total_mt);
        assert!(d.total_mt > c.total_mt);
        assert!((b.mean_mt - 2787.0).abs() < 10.0, "{}", b.mean_mt);
        assert!((d.mean_mt - 3764.0).abs() < 10.0, "{}", d.mean_mt);
    }
}
