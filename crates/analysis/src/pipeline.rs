//! End-to-end study pipeline over the synthetic Top 500.
//!
//! Mirrors the paper's §IV workflow: generate the list → apply top500.org
//! missingness → run EasyC (Baseline) → add public info → run EasyC again
//! (+PublicInfo) → interpolate the remainder → aggregate.
//!
//! Both scenario runs go through the unified [`easyc::Assessment`] session;
//! the coverage counts are read off the session footprints directly instead
//! of re-running every estimator a second time.

use crate::aggregate::Aggregate;
use crate::fleet::{scenario_sweep_streamed, scenario_sweep_streamed_to_csv, ScenarioSummary};
use crate::interpolate::{interpolate_with_summary, InterpolationSummary};
use crate::report::SweepCsvWriter;
use easyc::{
    Assessment, CoverageReport, DataScenario, DrawPlan, EasyCConfig, Scenario, ScenarioDelta,
    ScenarioMatrix, SystemFootprint,
};
use top500::enrich::{enrich, RevealRates};
use top500::list::Top500List;
use top500::stream::{Prefetched, SyntheticChunks};
use top500::synthetic::{generate_full, mask_baseline, MaskRates, SyntheticConfig};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct StudyPipeline {
    /// Synthetic list parameters.
    pub synthetic: SyntheticConfig,
}

/// One data scenario's results.
#[derive(Debug, Clone)]
pub struct ScenarioResults {
    /// Per-system footprints (rank order).
    pub footprints: Vec<SystemFootprint>,
    /// Coverage counts.
    pub coverage: CoverageReport,
    /// Operational aggregate over covered systems.
    pub operational: Aggregate,
    /// Embodied aggregate over covered systems.
    pub embodied: Aggregate,
}

/// Everything the study computes.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Ground-truth list (no missingness).
    pub full: Top500List,
    /// Baseline (top500.org) list.
    pub baseline: Top500List,
    /// Enriched (+public info) list.
    pub enriched: Top500List,
    /// Results under the baseline scenario.
    pub baseline_results: ScenarioResults,
    /// Results under the enriched scenario.
    pub enriched_results: ScenarioResults,
    /// Interpolated full operational series, MT CO2e (rank order).
    pub operational_interpolated: Vec<f64>,
    /// Interpolated full embodied series, MT CO2e.
    pub embodied_interpolated: Vec<f64>,
    /// Operational interpolation summary.
    pub operational_summary: InterpolationSummary,
    /// Embodied interpolation summary.
    pub embodied_summary: InterpolationSummary,
}

impl StudyPipeline {
    /// Pipeline over `n` synthetic systems with the given seed.
    pub fn new(n: u32, seed: u64) -> StudyPipeline {
        StudyPipeline {
            synthetic: SyntheticConfig {
                n,
                seed,
                ..SyntheticConfig::default()
            },
        }
    }

    /// Runs the full study.
    pub fn run(&self) -> PipelineOutput {
        let full = generate_full(&self.synthetic);
        let baseline = mask_baseline(&full, &MaskRates::default(), self.synthetic.seed);
        let enriched = enrich(
            &baseline,
            &full,
            &RevealRates::default(),
            self.synthetic.seed,
        );

        let baseline_results = assess_scenario(&baseline, Scenario::Baseline.label());
        let enriched_results = assess_scenario(&enriched, Scenario::BaselinePlusPublic.label());

        let op_series: Vec<Option<f64>> = enriched_results
            .footprints
            .iter()
            .map(SystemFootprint::operational_mt)
            .collect();
        let emb_series: Vec<Option<f64>> = enriched_results
            .footprints
            .iter()
            .map(SystemFootprint::embodied_mt)
            .collect();
        let (operational_interpolated, operational_summary) =
            interpolate_with_summary(&op_series, 5).expect("some systems covered");
        let (embodied_interpolated, embodied_summary) =
            interpolate_with_summary(&emb_series, 5).expect("some systems covered");

        PipelineOutput {
            full,
            baseline,
            enriched,
            baseline_results,
            enriched_results,
            operational_interpolated,
            embodied_interpolated,
            operational_summary,
            embodied_summary,
        }
    }

    /// Sweeps a scenario matrix over this pipeline's synthetic fleet in
    /// one session *with* Monte-Carlo uncertainty, and pairs every
    /// scenario against the matrix's first scenario via common random
    /// numbers: the summaries plus one CRN-tight [`ScenarioDelta`] per
    /// variant. The between-scenario claims of a study read off these
    /// deltas instead of differenced independent bands.
    pub fn compare_sweep(
        &self,
        matrix: &ScenarioMatrix,
        plan: DrawPlan,
    ) -> (Vec<crate::fleet::ScenarioSummary>, Vec<ScenarioDelta>) {
        let output = Assessment::of(&generate_full(&self.synthetic))
            .scenarios(matrix)
            .draw_plan(plan)
            .run();
        let summaries = crate::fleet::summarize_slices(output.slices());
        let baseline = matrix
            .scenarios()
            .first()
            .map(|s| s.name.clone())
            .unwrap_or_default();
        let deltas = crate::fleet::compare_to_baseline(&output, &baseline);
        (summaries, deltas)
    }

    /// Sweeps a scenario matrix over this pipeline's synthetic fleet
    /// *without materializing it*: the generator streams
    /// `rows_per_chunk` systems at a time through an incremental session
    /// (see `easyc::stream`). For any `n` that fits in memory the result
    /// is bit-identical to summarizing an in-memory
    /// [`Assessment`] over [`generate_full`] — which is what lets the
    /// study's workflow scale to fleets of millions of systems.
    pub fn stream_sweep(
        &self,
        matrix: &ScenarioMatrix,
        rows_per_chunk: usize,
    ) -> Vec<ScenarioSummary> {
        match scenario_sweep_streamed(
            SyntheticChunks::new(self.synthetic, rows_per_chunk),
            matrix,
            EasyCConfig::default(),
        ) {
            Ok(summaries) => summaries,
            Err(never) => match never {},
        }
    }

    /// [`StudyPipeline::stream_sweep`] with the ingest/assess pipeline
    /// fully engaged: the synthetic generator runs on a background
    /// prefetch thread ([`Prefetched`]) while the pool assesses, and every
    /// per-(scenario, system) row is spilled chunk-by-chunk into a
    /// columnar CSV at `target` (byte-identical to the in-memory
    /// `to_frame` artifact). Memory stays bounded by two chunks however
    /// large `n` is.
    pub fn stream_sweep_to_csv(
        &self,
        matrix: &ScenarioMatrix,
        rows_per_chunk: usize,
        target: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Vec<ScenarioSummary>> {
        let mut writer = SweepCsvWriter::create(target, matrix.len())?;
        let source = Prefetched::new(SyntheticChunks::new(self.synthetic, rows_per_chunk));
        let summaries = match scenario_sweep_streamed_to_csv(
            source,
            matrix,
            EasyCConfig::default(),
            &mut writer,
        ) {
            Ok(summaries) => summaries,
            Err(never) => match never {},
        };
        writer.finish()?;
        Ok(summaries)
    }
}

fn assess_scenario(list: &Top500List, label: &str) -> ScenarioResults {
    let footprints = Assessment::of(list)
        .scenario(DataScenario::full(label))
        .run()
        .into_footprints();
    let op: Vec<Option<f64>> = footprints
        .iter()
        .map(SystemFootprint::operational_mt)
        .collect();
    let emb: Vec<Option<f64>> = footprints
        .iter()
        .map(SystemFootprint::embodied_mt)
        .collect();
    ScenarioResults {
        // Coverage is "the estimator returned Ok" — read it off the batch
        // results instead of running every estimator a second time.
        coverage: CoverageReport::from_footprints(&footprints),
        operational: Aggregate::of(&op),
        embodied: Aggregate::of(&emb),
        footprints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output() -> PipelineOutput {
        StudyPipeline::new(500, 0x5EED_CAFE).run()
    }

    #[test]
    fn pipeline_reproduces_paper_shape() {
        let out = output();
        // Coverage ordering: GHG (≈0) < baseline < enriched < full.
        assert!(
            out.baseline_results.coverage.operational < out.enriched_results.coverage.operational
        );
        assert!(out.baseline_results.coverage.embodied < out.enriched_results.coverage.embodied);
        // Interpolated total exceeds the covered total (gaps are filled).
        assert!(out.operational_summary.full_total > out.operational_summary.covered_total);
        assert!(out.embodied_summary.full_total > out.embodied_summary.covered_total);
    }

    #[test]
    fn embodied_interpolation_adds_more_than_operational() {
        // Paper: +1.74 % operational vs +23.18 % embodied — embodied has
        // far more gaps to fill.
        let out = output();
        assert!(
            out.embodied_summary.relative_increase() > out.operational_summary.relative_increase()
        );
    }

    #[test]
    fn totals_in_paper_magnitude() {
        // The synthetic fleet should land within ~3x of the paper's
        // 1.39 M MT operational / 1.88 M MT embodied totals — same order,
        // not a calibration fit.
        let out = output();
        let op = out.operational_summary.full_total;
        let emb = out.embodied_summary.full_total;
        assert!(op > 0.4e6 && op < 4.5e6, "operational total {op}");
        assert!(emb > 0.4e6 && emb < 6.0e6, "embodied total {emb}");
    }

    #[test]
    fn top_systems_dominate() {
        // Figure 3/8 shape: the head of the list carries most of the carbon.
        let out = output();
        let head: f64 = out.operational_interpolated[..50].iter().sum();
        let tail: f64 = out.operational_interpolated[450..].iter().sum();
        assert!(head > tail * 3.0, "head {head} tail {tail}");
    }

    #[test]
    fn deterministic() {
        let a = output();
        let b = output();
        assert_eq!(a.operational_interpolated, b.operational_interpolated);
        assert_eq!(
            a.baseline_results.coverage.operational,
            b.baseline_results.coverage.operational
        );
    }

    #[test]
    fn small_lists_work() {
        let out = StudyPipeline::new(20, 1).run();
        assert_eq!(out.operational_interpolated.len(), 20);
        assert_eq!(out.full.len(), 20);
    }

    #[test]
    fn compare_sweep_deltas_bit_identical_to_streamed_compare() {
        use easyc::{MetricBit, MetricMask};
        let pipeline = StudyPipeline::new(100, 11);
        let matrix =
            ScenarioMatrix::new()
                .with(DataScenario::full("full"))
                .with(DataScenario::masked(
                    "no-power",
                    MetricMask::ALL
                        .without(MetricBit::PowerKw)
                        .without(MetricBit::AnnualEnergy),
                ));
        let plan = DrawPlan::new(80).with_seed(11).with_confidence(0.9);
        let (summaries, deltas) = pipeline.compare_sweep(&matrix, plan);
        assert_eq!(summaries.len(), 2);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].baseline, "full");
        assert_eq!(deltas[0].variant, "no-power");
        assert!(deltas[0].operational.is_some());
        // The streamed session folds the exact same paired draws.
        let streamed = Assessment::stream(SyntheticChunks::new(pipeline.synthetic, 17))
            .scenarios(&matrix)
            .draw_plan(plan)
            .run()
            .unwrap_or_else(|never| match never {});
        assert_eq!(streamed.compare("full", "no-power").unwrap(), deltas[0]);
    }

    #[test]
    fn stream_sweep_matches_in_memory_sweep_over_the_same_fleet() {
        use crate::fleet::scenario_sweep;
        use easyc::{MetricBit, MetricMask};
        let pipeline = StudyPipeline::new(120, 11);
        let matrix =
            ScenarioMatrix::new()
                .with(DataScenario::full("full"))
                .with(DataScenario::masked(
                    "no-power",
                    MetricMask::ALL
                        .without(MetricBit::PowerKw)
                        .without(MetricBit::AnnualEnergy),
                ));
        let in_memory = scenario_sweep(
            &generate_full(&pipeline.synthetic),
            &matrix,
            EasyCConfig::default(),
        );
        for rows in [17usize, 120, 4096] {
            assert_eq!(
                pipeline.stream_sweep(&matrix, rows),
                in_memory,
                "rows {rows}"
            );
        }
    }
}
