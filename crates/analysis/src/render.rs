//! Plain-text rendering of figure/table data (aligned columns, CSV).

/// Renders rows as an aligned text table. `headers.len()` must equal each
/// row's length.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&render_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(
            row.iter().map(String::as_str).collect(),
            &widths,
        ));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (no quoting — figure data is numeric/simple).
pub fn csv_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats an `Option<f64>` for table cells (empty when missing).
pub fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.0}")).unwrap_or_default()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_table() {
        let table = text_table(
            &["rank", "name"],
            &[
                vec!["1".into(), "El Capitan".into()],
                vec!["500".into(), "Marlyn".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("rank"));
        assert!(lines[2].trim_start().starts_with('1'));
    }

    #[test]
    fn csv_output() {
        let csv = csv_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(opt(Some(12.7)), "13");
        assert_eq!(opt(None), "");
        assert_eq!(pct(0.808), "80.8%");
    }
}
