//! One generator per paper table and figure.
//!
//! Reference figures (3, 7, 8, 9, Table II) are recomputed from the
//! embedded appendix; coverage figures (2, 4, 5, 6, Table I) additionally
//! have pipeline editions computed from the synthetic list. Each generator
//! returns typed rows/series plus `render()` (aligned text) and `to_csv()`.

use crate::aggregate::Aggregate;
use crate::pipeline::PipelineOutput;
use crate::projection::{self, PerfPerCarbon, Projection};
use crate::render::{csv_table, opt, pct, text_table};
use crate::sensitivity::{self, SensitivityReport};
use top500::appendix::AppendixRow;
use top500::list::{RankRange, Top500List, RANK_RANGES};
use top500::record::DataItem;

/// Sum of Rmax over the November 2024 list, PFlop/s (top500.org headline:
/// ≈11.7 EFlop/s). Used as the Figure 11 performance base.
pub(crate) const TOTAL_RMAX_PFLOPS_NOV2024: f64 = 11_724.0;

// ---------------------------------------------------------------- Figure 2

/// Figure 2: number of systems missing k data items (k = 1..19, plus
/// "None" for complete records).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// `(label, systems)` bars: "1".."19" then "None".
    pub bars: Vec<(String, usize)>,
}

impl Fig2 {
    /// Builds the histogram from a (masked) list.
    pub fn from_list(list: &Top500List) -> Fig2 {
        let max_items = DataItem::ALL.len();
        let mut counts = vec![0usize; max_items + 1];
        for sys in list.systems() {
            counts[sys.missing_count()] += 1;
        }
        let mut bars: Vec<(String, usize)> = (1..=max_items)
            .map(|k| (k.to_string(), counts[k]))
            .collect();
        bars.push(("None".to_string(), counts[0]));
        Fig2 { bars }
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .bars
            .iter()
            .map(|(l, c)| vec![l.clone(), c.to_string()])
            .collect();
        text_table(&["Data Items Missing", "# of Systems"], &rows)
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .bars
            .iter()
            .map(|(l, c)| vec![l.clone(), c.to_string()])
            .collect();
        csv_table(&["missing_items", "systems"], &rows)
    }
}

// ----------------------------------------------------------------- Table I

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Metric name (paper wording).
    pub metric: &'static str,
    /// Systems incomplete with top500.org data.
    pub incomplete_top500: usize,
    /// Systems incomplete with other public data added.
    pub incomplete_public: usize,
}

/// Table I: per-metric incompleteness under both scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Builds the table from the baseline and enriched lists.
    pub fn from_lists(baseline: &Top500List, enriched: &Top500List) -> Table1 {
        let count_missing = |list: &Top500List, item: DataItem| {
            list.systems().iter().filter(|s| !s.has_item(item)).count()
        };
        let rows = vec![
            ("Operation Year", DataItem::OperationYear),
            ("# of Compute Nodes", DataItem::NodeCount),
            ("# of GPUs", DataItem::AcceleratorCount),
            ("# of CPUs", DataItem::CpuCount),
            ("Memory Capacity", DataItem::MemoryCapacity),
            ("Memory Type", DataItem::MemoryType),
            ("SSD Capacity", DataItem::SsdCapacity),
            ("System Util (opt.)", DataItem::Utilization),
        ]
        .into_iter()
        .map(|(metric, item)| Table1Row {
            metric,
            incomplete_top500: count_missing(baseline, item),
            incomplete_public: count_missing(enriched, item),
        })
        .collect();
        Table1 { rows }
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.metric.to_string(),
                    r.incomplete_top500.to_string(),
                    r.incomplete_public.to_string(),
                ]
            })
            .collect();
        text_table(
            &[
                "Type",
                "# Incomplete [Top500.org]",
                "# Incomplete [Other Public]",
            ],
            &rows,
        )
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.metric.to_string(),
                    r.incomplete_top500.to_string(),
                    r.incomplete_public.to_string(),
                ]
            })
            .collect();
        csv_table(&["metric", "incomplete_top500", "incomplete_public"], &rows)
    }
}

// ---------------------------------------------------------- Figures 3 & 8

/// A carbon-versus-rank scatter (Figures 3 and 8).
#[derive(Debug, Clone, PartialEq)]
pub struct CarbonByRank {
    /// Figure label.
    pub label: String,
    /// `(rank, operational MT, embodied MT)` — `None` = no estimate.
    pub points: Vec<(u32, Option<f64>, Option<f64>)>,
}

impl CarbonByRank {
    /// Figure 3: appendix values under the top500.org-only scenario.
    pub fn fig3(rows: &[AppendixRow]) -> CarbonByRank {
        CarbonByRank {
            label: "Fig 3: Top500.org data only".to_string(),
            points: rows
                .iter()
                .map(|r| (r.rank, r.operational.top500, r.embodied.top500))
                .collect(),
        }
    }

    /// Figure 8: appendix values under the full interpolated scenario.
    pub fn fig8(rows: &[AppendixRow]) -> CarbonByRank {
        CarbonByRank {
            label: "Fig 8: full assessment (interpolated)".to_string(),
            points: rows
                .iter()
                .map(|r| (r.rank, r.operational.interpolated, r.embodied.interpolated))
                .collect(),
        }
    }

    /// Number of points with an operational value.
    pub fn operational_count(&self) -> usize {
        self.points.iter().filter(|(_, op, _)| op.is_some()).count()
    }

    /// Number of points with an embodied value.
    pub fn embodied_count(&self) -> usize {
        self.points
            .iter()
            .filter(|(_, _, emb)| emb.is_some())
            .count()
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|&(rank, op, emb)| vec![rank.to_string(), opt(op), opt(emb)])
            .collect();
        csv_table(&["rank", "operational_mt", "embodied_mt"], &rows)
    }
}

// ---------------------------------------------------------------- Figure 4

/// Figure 4: reporting coverage under the three methods.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// `(method, operational count, embodied count)` out of `total`.
    pub methods: Vec<(String, usize, usize)>,
    /// List size.
    pub total: usize,
}

impl Fig4 {
    /// Reference edition from appendix coverage counts (GHG from the
    /// paper's observation: none report under the protocol).
    pub fn reference(rows: &[AppendixRow]) -> Fig4 {
        let op_t = rows
            .iter()
            .filter(|r| r.operational.top500.is_some())
            .count();
        let op_p = rows
            .iter()
            .filter(|r| r.operational.public.is_some())
            .count();
        let emb_t = rows.iter().filter(|r| r.embodied.top500.is_some()).count();
        let emb_p = rows.iter().filter(|r| r.embodied.public.is_some()).count();
        Fig4 {
            methods: vec![
                ("GHG protocol".to_string(), 0, 0),
                ("EasyC (top500.org)".to_string(), op_t, emb_t),
                ("EasyC (+ public info)".to_string(), op_p, emb_p),
            ],
            total: rows.len(),
        }
    }

    /// Pipeline edition from the synthetic study.
    pub fn pipeline(out: &PipelineOutput) -> Fig4 {
        let ghg = ghg::coverage::coverage(out.baseline.systems());
        Fig4 {
            methods: vec![
                ("GHG protocol".to_string(), ghg.operational, ghg.embodied),
                (
                    "EasyC (top500.org)".to_string(),
                    out.baseline_results.coverage.operational,
                    out.baseline_results.coverage.embodied,
                ),
                (
                    "EasyC (+ public info)".to_string(),
                    out.enriched_results.coverage.operational,
                    out.enriched_results.coverage.embodied,
                ),
            ],
            total: out.baseline.len(),
        }
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .methods
            .iter()
            .map(|(m, op, emb)| {
                vec![
                    m.clone(),
                    format!("{op}/{}", self.total),
                    format!("{emb}/{}", self.total),
                ]
            })
            .collect();
        text_table(&["Method", "Operational", "Embodied"], &rows)
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .methods
            .iter()
            .map(|(m, op, emb)| vec![m.clone(), op.to_string(), emb.to_string()])
            .collect();
        csv_table(&["method", "operational", "embodied"], &rows)
    }
}

// ----------------------------------------------------------- Figures 5 & 6

/// Coverage by rank range, one panel (column) per scenario. The paper's
/// fixed two-scenario editions (Figure 5 = operational, Figure 6 =
/// embodied) are the `baseline`/`public` instantiations; arbitrary
/// [`ScenarioMatrix`](easyc::ScenarioMatrix) sweeps render one
/// coverage-by-rank panel per scenario through [`CoverageByRange::from_slices`]
/// or [`CoverageByRange::from_matrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageByRange {
    /// Output ("Operational" / "Embodied").
    pub output: String,
    /// Panel (scenario) labels, column order.
    pub scenarios: Vec<String>,
    /// `(range, covered fraction per scenario)`, one fraction per panel.
    pub rows: Vec<(RankRange, Vec<f64>)>,
}

/// Coverage fractions per rank range from per-range covered-predicate
/// columns: `panels[p]` yields `(rank, covered)` pairs for panel `p`.
fn coverage_rows(panels: &[Vec<(u32, bool)>]) -> Vec<(RankRange, Vec<f64>)> {
    RANK_RANGES
        .iter()
        .map(|&range| {
            let fractions = panels
                .iter()
                .map(|panel| {
                    let in_range: Vec<bool> = panel
                        .iter()
                        .filter(|(rank, _)| range.contains(*rank))
                        .map(|&(_, covered)| covered)
                        .collect();
                    let total = in_range.len().max(1) as f64;
                    in_range.iter().filter(|&&c| c).count() as f64 / total
                })
                .collect();
            (range, fractions)
        })
        .collect()
}

fn output_label(embodied: bool) -> String {
    if embodied { "Embodied" } else { "Operational" }.to_string()
}

fn footprint_panel(footprints: &[easyc::SystemFootprint], embodied: bool) -> Vec<(u32, bool)> {
    footprints
        .iter()
        .map(|fp| {
            let covered = if embodied {
                fp.embodied_mt().is_some()
            } else {
                fp.operational_mt().is_some()
            };
            (fp.rank, covered)
        })
        .collect()
}

impl CoverageByRange {
    /// Builds from appendix presence columns. `embodied` selects Figure 6.
    pub fn from_appendix(rows: &[AppendixRow], embodied: bool) -> CoverageByRange {
        let panel = |public: bool| -> Vec<(u32, bool)> {
            rows.iter()
                .map(|row| {
                    let sv = if embodied {
                        &row.embodied
                    } else {
                        &row.operational
                    };
                    let covered = if public {
                        sv.public.is_some()
                    } else {
                        sv.top500.is_some()
                    };
                    (row.rank, covered)
                })
                .collect()
        };
        CoverageByRange {
            output: output_label(embodied),
            scenarios: vec!["baseline".to_string(), "public".to_string()],
            rows: coverage_rows(&[panel(false), panel(true)]),
        }
    }

    /// Builds from pipeline footprints. `embodied` selects the output.
    pub fn from_pipeline(out: &PipelineOutput, embodied: bool) -> CoverageByRange {
        CoverageByRange {
            output: output_label(embodied),
            scenarios: vec!["baseline".to_string(), "public".to_string()],
            rows: coverage_rows(&[
                footprint_panel(&out.baseline_results.footprints, embodied),
                footprint_panel(&out.enriched_results.footprints, embodied),
            ]),
        }
    }

    /// Builds one panel per scenario from sweep slices (an
    /// [`easyc::AssessmentOutput`] or legacy batch output).
    pub fn from_slices(slices: &[easyc::ScenarioSlice], embodied: bool) -> CoverageByRange {
        CoverageByRange {
            output: output_label(embodied),
            scenarios: slices.iter().map(|s| s.scenario.name.clone()).collect(),
            rows: coverage_rows(
                &slices
                    .iter()
                    .map(|s| footprint_panel(&s.footprints, embodied))
                    .collect::<Vec<_>>(),
            ),
        }
    }

    /// Runs a whole [`easyc::ScenarioMatrix`] over `list` through one
    /// [`easyc::Assessment`] session and renders coverage-by-rank panels
    /// per scenario.
    pub fn from_matrix(
        list: &top500::list::Top500List,
        matrix: &easyc::ScenarioMatrix,
        config: easyc::EasyCConfig,
        embodied: bool,
    ) -> CoverageByRange {
        let output = easyc::Assessment::of(list)
            .config(config)
            .scenarios(matrix)
            .run();
        CoverageByRange::from_slices(output.slices(), embodied)
    }

    /// Coverage fraction of the full-list bucket for panel `scenario`;
    /// `None` when no such panel exists.
    pub fn overall_of(&self, scenario: usize) -> Option<f64> {
        self.rows
            .last()
            .expect("1-500 bucket present")
            .1
            .get(scenario)
            .copied()
    }

    /// Coverage fraction of the full-list bucket under the given scenario.
    /// Only meaningful for the fixed two-panel editions
    /// ([`CoverageByRange::from_appendix`] / [`CoverageByRange::from_pipeline`]:
    /// `false` = baseline, `true` = +public); panics on any other panel
    /// layout — use [`CoverageByRange::overall_of`] for arbitrary matrices.
    pub fn overall(&self, public: bool) -> f64 {
        assert_eq!(
            self.scenarios.len(),
            2,
            "overall(bool) addresses the two-panel baseline/public editions; \
             this figure has panels {:?} — use overall_of(index)",
            self.scenarios
        );
        self.overall_of(usize::from(public))
            .expect("two-panel figure")
    }

    /// Text rendering: one coverage column per scenario panel.
    pub fn render(&self) -> String {
        let headers: Vec<String> = std::iter::once("Rank Range".to_string())
            .chain(self.scenarios.iter().map(|s| format!("Coverage ({s})")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(range, fractions)| {
                std::iter::once(range.label())
                    .chain(fractions.iter().map(|&f| pct(f)))
                    .collect()
            })
            .collect();
        text_table(&header_refs, &rows)
    }

    /// CSV rendering: `rank_range` plus one `coverage_<scenario>` column
    /// per panel.
    pub fn to_csv(&self) -> String {
        let headers: Vec<String> = std::iter::once("rank_range".to_string())
            .chain(self.scenarios.iter().map(|s| format!("coverage_{s}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(range, fractions)| {
                std::iter::once(range.label())
                    .chain(fractions.iter().map(|f| format!("{f:.4}")))
                    .collect()
            })
            .collect();
        csv_table(&header_refs, &rows)
    }
}

// ---------------------------------------------------------------- Figure 7

/// Figure 7: totals and averages, covered set versus interpolated 500.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// Operational aggregate over the covered (+public) set.
    pub op_covered: Aggregate,
    /// Embodied aggregate over the covered (+public) set.
    pub emb_covered: Aggregate,
    /// Operational aggregate over the interpolated 500.
    pub op_interpolated: Aggregate,
    /// Embodied aggregate over the interpolated 500.
    pub emb_interpolated: Aggregate,
}

impl Fig7 {
    /// Builds from appendix rows.
    pub fn from_appendix(rows: &[AppendixRow]) -> Fig7 {
        let op_p: Vec<Option<f64>> = rows.iter().map(|r| r.operational.public).collect();
        let op_i: Vec<Option<f64>> = rows.iter().map(|r| r.operational.interpolated).collect();
        let emb_p: Vec<Option<f64>> = rows.iter().map(|r| r.embodied.public).collect();
        let emb_i: Vec<Option<f64>> = rows.iter().map(|r| r.embodied.interpolated).collect();
        Fig7 {
            op_covered: Aggregate::of(&op_p),
            emb_covered: Aggregate::of(&emb_p),
            op_interpolated: Aggregate::of(&op_i),
            emb_interpolated: Aggregate::of(&emb_i),
        }
    }

    /// Text rendering (totals panel + averages panel).
    pub fn render(&self) -> String {
        let rows = vec![
            vec![
                format!(
                    "{},{} (Total)",
                    self.op_covered.count, self.emb_covered.count
                ),
                format!("{:.0}", self.op_covered.total_mt / 1000.0),
                format!("{:.0}", self.emb_covered.total_mt / 1000.0),
            ],
            vec![
                "500 (Total Interpolated)".to_string(),
                format!("{:.0}", self.op_interpolated.total_mt / 1000.0),
                format!("{:.0}", self.emb_interpolated.total_mt / 1000.0),
            ],
            vec![
                format!("{},{} (Avg)", self.op_covered.count, self.emb_covered.count),
                format!("{:.2}", self.op_covered.mean_mt / 1000.0),
                format!("{:.2}", self.emb_covered.mean_mt / 1000.0),
            ],
            vec![
                "500 (Avg Interpolated)".to_string(),
                format!("{:.2}", self.op_interpolated.mean_mt / 1000.0),
                format!("{:.2}", self.emb_interpolated.mean_mt / 1000.0),
            ],
        ];
        text_table(
            &["Set", "Operational (kMT CO2e)", "Embodied (kMT CO2e)"],
            &rows,
        )
    }
}

// ------------------------------------------------------- Figures 9, 10, 11

/// Figure 9 bundle (operational + embodied sensitivity).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9 {
    /// Operational panel.
    pub operational: SensitivityReport,
    /// Embodied panel.
    pub embodied: SensitivityReport,
}

impl Fig9 {
    /// Builds from appendix rows.
    pub fn from_appendix(rows: &[AppendixRow]) -> Fig9 {
        Fig9 {
            operational: sensitivity::operational(rows),
            embodied: sensitivity::embodied(rows),
        }
    }

    /// CSV of per-rank diffs.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .operational
            .diffs
            .iter()
            .zip(&self.embodied.diffs)
            .map(|(op, emb)| vec![op.rank.to_string(), opt(op.diff_mt), opt(emb.diff_mt)])
            .collect();
        csv_table(&["rank", "op_diff_mt", "emb_diff_mt"], &rows)
    }
}

/// Figure 10 from appendix totals.
pub fn fig10(rows: &[AppendixRow]) -> Projection {
    let op: f64 = rows.iter().filter_map(|r| r.operational.interpolated).sum();
    let emb: f64 = rows.iter().filter_map(|r| r.embodied.interpolated).sum();
    projection::figure10(op, emb)
}

/// Figure 11 panels (operational, embodied) from appendix totals.
pub fn fig11(rows: &[AppendixRow]) -> (PerfPerCarbon, PerfPerCarbon) {
    let op_kmt: f64 = rows
        .iter()
        .filter_map(|r| r.operational.interpolated)
        .sum::<f64>()
        / 1000.0;
    let emb_kmt: f64 = rows
        .iter()
        .filter_map(|r| r.embodied.interpolated)
        .sum::<f64>()
        / 1000.0;
    (
        projection::figure11(TOTAL_RMAX_PFLOPS_NOV2024, op_kmt),
        projection::figure11(TOTAL_RMAX_PFLOPS_NOV2024, emb_kmt),
    )
}

// ---------------------------------------------------------------- Table II

/// Renders the full per-system Table II from appendix rows.
pub fn table2_render(rows: &[AppendixRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.rank.to_string(),
                r.name.clone().unwrap_or_default(),
                opt(r.operational.top500),
                opt(r.operational.public),
                opt(r.operational.interpolated),
                opt(r.embodied.top500),
                opt(r.embodied.public),
                opt(r.embodied.interpolated),
            ]
        })
        .collect();
    text_table(
        &[
            "Rank",
            "System Name",
            "Op[t500]",
            "Op[+pub]",
            "Op[+interp]",
            "Emb[t500]",
            "Emb[+pub]",
            "Emb[+interp]",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyPipeline;

    fn rows() -> Vec<AppendixRow> {
        top500::appendix::load()
    }

    #[test]
    fn fig2_bars_cover_all_systems() {
        let out = StudyPipeline::new(500, 7).run();
        let fig = Fig2::from_list(&out.baseline);
        let total: usize = fig.bars.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 500);
        assert_eq!(fig.bars.len(), 20); // 1..19 + None
                                        // Nothing is complete under top500.org data (Table I: memory/SSD
                                        // always missing) → the None bar is empty.
        assert_eq!(fig.bars.last().unwrap().1, 0);
    }

    #[test]
    fn table1_monotone_and_calibrated() {
        let out = StudyPipeline::new(500, 7).run();
        let t = Table1::from_lists(&out.baseline, &out.enriched);
        for row in &t.rows {
            assert!(
                row.incomplete_public <= row.incomplete_top500,
                "{} got worse",
                row.metric
            );
        }
        let nodes = t
            .rows
            .iter()
            .find(|r| r.metric == "# of Compute Nodes")
            .unwrap();
        assert!(
            (170..=250).contains(&nodes.incomplete_top500),
            "{}",
            nodes.incomplete_top500
        );
        assert!(
            (55..=125).contains(&nodes.incomplete_public),
            "{}",
            nodes.incomplete_public
        );
        let year = t
            .rows
            .iter()
            .find(|r| r.metric == "Operation Year")
            .unwrap();
        assert_eq!(year.incomplete_top500, 0); // Table I: 0
    }

    #[test]
    fn fig3_counts_match_coverage() {
        let fig = CarbonByRank::fig3(&rows());
        assert_eq!(fig.operational_count(), 391);
        assert_eq!(fig.embodied_count(), 283);
    }

    #[test]
    fn fig8_is_complete() {
        let fig = CarbonByRank::fig8(&rows());
        assert_eq!(fig.operational_count(), 500);
        assert_eq!(fig.embodied_count(), 500);
    }

    #[test]
    fn fig4_reference_counts() {
        let fig = Fig4::reference(&rows());
        assert_eq!(fig.methods[0], ("GHG protocol".to_string(), 0, 0));
        assert_eq!(fig.methods[1].1, 391);
        assert_eq!(fig.methods[2].1, 490);
        assert_eq!(fig.methods[1].2, 283);
        assert_eq!(fig.methods[2].2, 404);
    }

    #[test]
    fn fig4_pipeline_ordering() {
        let out = StudyPipeline::new(500, 7).run();
        let fig = Fig4::pipeline(&out);
        // GHG ≤ EasyC(baseline) ≤ EasyC(+public) for both outputs.
        assert!(fig.methods[0].1 <= fig.methods[1].1);
        assert!(fig.methods[1].1 <= fig.methods[2].1);
        assert!(fig.methods[0].2 <= fig.methods[1].2);
        assert!(fig.methods[1].2 <= fig.methods[2].2);
    }

    #[test]
    fn fig5_gap_in_26_to_100_band_fills_with_public_data() {
        let fig = CoverageByRange::from_appendix(&rows(), false);
        // Paper: gaps emerge "surprisingly high in the rankings 26-50,
        // 51-75, 76-100" and public info renders nearly full coverage.
        for (range, fractions) in &fig.rows {
            let (base, publ) = (fractions[0], fractions[1]);
            if range.lo == 26 || range.lo == 51 || range.lo == 76 {
                assert!(base < 0.9, "range {} base {base}", range.label());
                assert!(publ > base, "range {} did not improve", range.label());
            }
        }
        assert!((fig.overall(false) - 391.0 / 500.0).abs() < 1e-9);
        assert!((fig.overall(true) - 0.98).abs() < 1e-9);
    }

    #[test]
    fn fig6_embodied_worse_in_top150() {
        let fig = CoverageByRange::from_appendix(&rows(), true);
        // Paper: "For many systems in the Top 150, there was insufficient
        // data" — top-range embodied coverage below the tail's.
        let top = fig.rows.iter().find(|(r, _)| r.lo == 26).unwrap();
        let tail = fig.rows.iter().find(|(r, _)| r.lo == 301).unwrap();
        assert!(top.1[0] < tail.1[0], "top {} tail {}", top.1[0], tail.1[0]);
        assert!((fig.overall(true) - 0.808).abs() < 0.001);
    }

    #[test]
    fn fig5_pipeline_same_shape() {
        let out = StudyPipeline::new(500, 7).run();
        let fig = CoverageByRange::from_pipeline(&out, false);
        assert_eq!(fig.rows.len(), 14);
        assert_eq!(fig.scenarios, vec!["baseline", "public"]);
        // Public info never reduces coverage in any band.
        for (_, fractions) in &fig.rows {
            assert!(fractions[1] >= fractions[0] - 1e-9);
        }
    }

    #[test]
    fn coverage_panels_per_scenario_from_matrix() {
        use easyc::{DataScenario, MetricBit, MetricMask, ScenarioMatrix};
        let out = StudyPipeline::new(200, 7).run();
        let matrix = ScenarioMatrix::new()
            .with(DataScenario::full("full"))
            .with(DataScenario::masked(
                "no-structure",
                MetricMask::ALL
                    .without(MetricBit::Nodes)
                    .without(MetricBit::Gpus)
                    .without(MetricBit::Cpus),
            ))
            .with(DataScenario::masked(
                "no-power",
                MetricMask::ALL
                    .without(MetricBit::PowerKw)
                    .without(MetricBit::AnnualEnergy),
            ));
        let fig = CoverageByRange::from_matrix(
            &out.enriched,
            &matrix,
            easyc::EasyCConfig::default(),
            true,
        );
        assert_eq!(fig.scenarios, vec!["full", "no-structure", "no-power"]);
        assert_eq!(fig.rows.len(), 14);
        // Hiding structure can only hurt embodied coverage, in every band.
        for (range, fractions) in &fig.rows {
            assert!(
                fractions[1] <= fractions[0] + 1e-9,
                "range {}",
                range.label()
            );
        }
        // Panels must agree with a direct session's slice coverage.
        let session = easyc::Assessment::of(&out.enriched)
            .scenarios(&matrix)
            .run();
        let direct = CoverageByRange::from_slices(session.slices(), true);
        assert_eq!(fig, direct);
        assert!(
            (fig.overall_of(0).unwrap()
                - session.slice("full").unwrap().coverage.embodied_fraction())
            .abs()
                < 1e-9
        );
        // CSV carries one column per scenario.
        let csv = fig.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .contains("coverage_no-structure"));
    }

    #[test]
    fn fig7_totals_match_paper() {
        let fig = Fig7::from_appendix(&rows());
        assert!((fig.op_interpolated.total_mt / 1.39e6 - 1.0).abs() < 0.01);
        assert!((fig.emb_interpolated.total_mt / 1.88e6 - 1.0).abs() < 0.01);
        assert!((fig.op_covered.total_mt / 1.37e6 - 1.0).abs() < 0.01);
        assert!((fig.emb_covered.total_mt / 1.53e6 - 1.0).abs() < 0.01);
        assert!(fig.render().contains("500 (Total Interpolated)"));
    }

    #[test]
    fn fig9_headline_deltas() {
        let fig = Fig9::from_appendix(&rows());
        assert!((fig.operational.relative_change() - 0.0285).abs() < 0.002);
        assert!((fig.embodied.total_change_mt() / 1000.0 - 670.48).abs() < 2.0);
        assert!(fig.to_csv().lines().count() == 501);
    }

    #[test]
    fn fig10_from_appendix_grows() {
        let p = fig10(&rows());
        assert!((p.operational.overall_growth() - 1.8).abs() < 0.05);
        assert!(p.embodied.overall_growth() < 1.2);
    }

    #[test]
    fn fig11_bases_in_plausible_ratio() {
        let (op_panel, emb_panel) = fig11(&rows());
        // ~11724 PF / ~1394 kMT ≈ 8.4 PFlops per kMT CO2e.
        let base = op_panel.projected.at(2024).unwrap();
        assert!((base - 8.4).abs() < 0.2, "base {base}");
        assert!(emb_panel.projected.at(2024).unwrap() < base);
    }

    #[test]
    fn table2_renders_all_rows() {
        let text = table2_render(&rows());
        assert_eq!(text.lines().count(), 502); // header + rule + 500 rows
        assert!(text.contains("El Capitan"));
        assert!(text.contains("Marlyn"));
    }

    #[test]
    fn renders_are_nonempty() {
        let out = StudyPipeline::new(100, 7).run();
        assert!(!Fig2::from_list(&out.baseline).render().is_empty());
        assert!(!Table1::from_lists(&out.baseline, &out.enriched)
            .render()
            .is_empty());
        assert!(!Fig4::pipeline(&out).render().is_empty());
        assert!(!CoverageByRange::from_pipeline(&out, true)
            .to_csv()
            .is_empty());
        assert!(!CarbonByRank::fig3(&rows()).to_csv().is_empty());
    }
}
