//! Run the whole study and emit artifacts (text + CSV + JSON), including
//! the chunk-at-a-time [`SweepCsvWriter`] behind `sweep --stream --out`.

use crate::figures::{self, CarbonByRank, CoverageByRange, Fig2, Fig4, Fig7, Fig9, Table1};
use crate::fleet::{self, ScenarioSummary};
use crate::pipeline::{PipelineOutput, StudyPipeline};
use easyc::batch::footprints_frame;
use easyc::{
    Assessment, AssessmentOutput, ChunkRows, DataScenario, EasyCConfig, MetricBit, MetricMask,
    OverrideSet, ScenarioMatrix,
};
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Headline numbers of the study, serialisable for EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Reference (appendix-derived) numbers.
    pub reference: ReferenceHeadline,
    /// Pipeline (synthetic) numbers.
    pub pipeline: PipelineHeadline,
}

/// Numbers recomputed from the embedded appendix.
#[derive(Debug, Clone)]
pub struct ReferenceHeadline {
    /// Operational coverage: top500.org scenario.
    pub op_coverage_top500: usize,
    /// Operational coverage: +public scenario.
    pub op_coverage_public: usize,
    /// Embodied coverage: top500.org scenario.
    pub emb_coverage_top500: usize,
    /// Embodied coverage: +public scenario.
    pub emb_coverage_public: usize,
    /// Operational total of the interpolated 500, MT CO2e.
    pub op_total_mt: f64,
    /// Embodied total of the interpolated 500, MT CO2e.
    pub emb_total_mt: f64,
    /// Operational sensitivity (+public vs baseline), fraction.
    pub op_sensitivity: f64,
    /// Embodied sensitivity change, thousand MT.
    pub emb_sensitivity_kmt: f64,
    /// Vehicle equivalent of the operational total.
    pub op_vehicles: f64,
    /// Vehicle equivalent of the embodied total.
    pub emb_vehicles: f64,
    /// Projected 2030 / 2024 operational ratio.
    pub op_growth_2030: f64,
    /// Projected 2030 / 2024 embodied ratio.
    pub emb_growth_2030: f64,
}

/// Numbers from the synthetic end-to-end pipeline.
#[derive(Debug, Clone)]
pub struct PipelineHeadline {
    /// Systems in the synthetic list.
    pub systems: usize,
    /// Operational coverage at baseline.
    pub op_coverage_baseline: usize,
    /// Operational coverage after enrichment.
    pub op_coverage_enriched: usize,
    /// Embodied coverage at baseline.
    pub emb_coverage_baseline: usize,
    /// Embodied coverage after enrichment.
    pub emb_coverage_enriched: usize,
    /// Operational interpolated total, MT.
    pub op_total_mt: f64,
    /// Embodied interpolated total, MT.
    pub emb_total_mt: f64,
}

impl Headline {
    /// Pretty-printed JSON (hand-rolled; the environment has no serde).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let r = &self.reference;
        let p = &self.pipeline;
        format!(
            "{{\n  \"reference\": {{\n    \"op_coverage_top500\": {},\n    \"op_coverage_public\": {},\n    \"emb_coverage_top500\": {},\n    \"emb_coverage_public\": {},\n    \"op_total_mt\": {},\n    \"emb_total_mt\": {},\n    \"op_sensitivity\": {},\n    \"emb_sensitivity_kmt\": {},\n    \"op_vehicles\": {},\n    \"emb_vehicles\": {},\n    \"op_growth_2030\": {},\n    \"emb_growth_2030\": {}\n  }},\n  \"pipeline\": {{\n    \"systems\": {},\n    \"op_coverage_baseline\": {},\n    \"op_coverage_enriched\": {},\n    \"emb_coverage_baseline\": {},\n    \"emb_coverage_enriched\": {},\n    \"op_total_mt\": {},\n    \"emb_total_mt\": {}\n  }}\n}}\n",
            r.op_coverage_top500,
            r.op_coverage_public,
            r.emb_coverage_top500,
            r.emb_coverage_public,
            num(r.op_total_mt),
            num(r.emb_total_mt),
            num(r.op_sensitivity),
            num(r.emb_sensitivity_kmt),
            num(r.op_vehicles),
            num(r.emb_vehicles),
            num(r.op_growth_2030),
            num(r.emb_growth_2030),
            p.systems,
            p.op_coverage_baseline,
            p.op_coverage_enriched,
            p.emb_coverage_baseline,
            p.emb_coverage_enriched,
            num(p.op_total_mt),
            num(p.emb_total_mt),
        )
    }
}

/// Chunk-at-a-time CSV appender for per-(scenario, system) sweep results —
/// the artifact sink of `sweep --stream --out`.
///
/// The in-memory sweep writes its columnar artifact scenario-major (every
/// system of scenario 0, then scenario 1, …) via
/// [`AssessmentOutput::to_frame`] + `frame::csv::write`. A streaming sweep
/// produces rows chunk-major instead, so this writer spills each
/// scenario's rows to its own `*.partN` sidecar file as [`ChunkRows`]
/// blocks arrive, then [`finish`](SweepCsvWriter::finish) concatenates
/// header + sidecars (matrix order) into the target and removes them. The
/// result is **byte-identical** to the in-memory artifact (pinned by
/// `tests/streaming.rs` and a proptest) while memory stays bounded by one
/// chunk of rendered rows.
///
/// I/O errors are latched: the first failure disables further writes and
/// is surfaced by `finish`, so the sink callback stays infallible and the
/// streaming session's error type stays the source's.
///
/// ```no_run
/// use easyc::{Assessment, ScenarioMatrix};
/// use top500::stream::{Prefetched, SyntheticChunks};
/// use top500::synthetic::SyntheticConfig;
/// use analysis::report::SweepCsvWriter;
///
/// let matrix = ScenarioMatrix::new(); // … scenarios elided
/// let mut writer = SweepCsvWriter::create("results.csv", matrix.len())?;
/// let source = Prefetched::new(SyntheticChunks::new(
///     SyntheticConfig { n: 1_000_000, ..Default::default() },
///     8192,
/// ));
/// let output = Assessment::stream(source)
///     .scenarios(&matrix)
///     .rows(|block| writer.append(&block))
///     .run()?;
/// writer.finish()?; // header + per-scenario spills -> results.csv
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SweepCsvWriter {
    target: PathBuf,
    parts: Vec<(PathBuf, BufWriter<File>)>,
    error: Option<io::Error>,
}

impl SweepCsvWriter {
    /// Opens one spill sidecar per scenario next to `target`
    /// (`<target>.<pid>-<k>.s0.part0`, `.part1`, …). The pid +
    /// process-local counter make the names unique, and the files are
    /// opened `create_new`, so a concurrent sweep spilling next to the
    /// same target (or a pre-existing user file that happens to share a
    /// name) surfaces as an error instead of silently interleaving rows.
    /// Nothing is written to `target` itself until
    /// [`finish`](SweepCsvWriter::finish). Equivalent to
    /// [`create_sharded`](SweepCsvWriter::create_sharded) with shard 0 —
    /// the single-writer case every non-sharded sweep uses.
    pub fn create(target: impl Into<PathBuf>, scenarios: usize) -> io::Result<SweepCsvWriter> {
        SweepCsvWriter::create_sharded(target, scenarios, 0)
    }

    /// [`create`](SweepCsvWriter::create) with a shard tag in the sidecar
    /// names (`<target>.<pid>-<k>.s<shard>.part<i>`): a sharded sweep
    /// (`--stream --shards N --out`) that ever spills per shard gets
    /// sidecars whose provenance is visible on disk and collision-free by
    /// construction, and the assembled artifact stays byte-identical —
    /// the tag only touches the temporary names.
    pub fn create_sharded(
        target: impl Into<PathBuf>,
        scenarios: usize,
        shard: usize,
    ) -> io::Result<SweepCsvWriter> {
        static SPILL_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let epoch = SPILL_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let stamp = format!("{}-{epoch}", std::process::id());
        let target = target.into();
        let mut parts = Vec::with_capacity(scenarios);
        for i in 0..scenarios {
            let path = PathBuf::from(format!("{}.{stamp}.s{shard}.part{i}", target.display()));
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(file) => parts.push((path, BufWriter::new(file))),
                Err(e) => {
                    // Don't orphan the sidecars already created.
                    for (created, _) in &parts {
                        let _ = fs::remove_file(created);
                    }
                    return Err(e);
                }
            }
        }
        Ok(SweepCsvWriter {
            target,
            parts,
            error: None,
        })
    }

    /// Appends one (scenario × chunk) block of rows to that scenario's
    /// spill file. Rendering goes through the exact code path of the
    /// in-memory artifact (`easyc::batch::footprints_frame` +
    /// `frame::csv::write_rows`), which is what makes the final
    /// concatenation byte-identical. Infallible by design — see the type
    /// docs for the error latch.
    pub fn append(&mut self, block: &ChunkRows<'_>) {
        if self.error.is_some() {
            return;
        }
        let Some((_, writer)) = self.parts.get_mut(block.scenario_index) else {
            self.error = Some(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "scenario index {} out of range for {} spill files",
                    block.scenario_index,
                    self.parts.len()
                ),
            ));
            return;
        };
        let rows =
            frame::csv::write_rows(&footprints_frame(&block.scenario.name, block.footprints));
        if let Err(e) = writer.write_all(rows.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// First latched I/O error, if any (also returned by
    /// [`finish`](SweepCsvWriter::finish)).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Writes the header plus every scenario's spilled rows (matrix order)
    /// into the target, streaming sidecar-by-sidecar, then removes the
    /// sidecars. Returns the target path. On failure nothing is left
    /// behind — a partially-assembled target is removed along with the
    /// sidecars, so a target file on disk always means a complete artifact.
    pub fn finish(mut self) -> io::Result<PathBuf> {
        if let Some(e) = self.error.take() {
            self.cleanup();
            return Err(e);
        }
        let result = (|| {
            let mut out = BufWriter::new(File::create(&self.target)?);
            out.write_all(frame::csv::write_header(&footprints_frame("", &[])).as_bytes())?;
            for (path, writer) in self.parts.iter_mut() {
                writer.flush()?;
                let mut part = File::open(&*path)?;
                io::copy(&mut part, &mut out)?;
            }
            out.flush()
        })();
        self.cleanup();
        if result.is_err() {
            let _ = fs::remove_file(&self.target);
        }
        result.map(|()| self.target.clone())
    }

    /// Best-effort removal of the spill sidecars.
    fn cleanup(&mut self) {
        for (path, _) in &self.parts {
            let _ = fs::remove_file(path);
        }
    }
}

impl Drop for SweepCsvWriter {
    /// An abandoned writer (e.g. the stream errored before `finish`) must
    /// not leave `*.partN` sidecars behind. Removal is idempotent, so the
    /// extra pass after a successful `finish` is a no-op.
    fn drop(&mut self) {
        self.cleanup();
    }
}

/// The complete study output.
pub struct StudyReport {
    /// Headline numbers.
    pub headline: Headline,
    /// Pipeline raw output.
    pub pipeline: PipelineOutput,
    /// Scenario sweep of the enriched synthetic list (one interleaved
    /// [`Assessment`] session over [`default_scenario_matrix`]).
    pub sweep: Vec<ScenarioSummary>,
    /// The raw session output behind `sweep` (per-scenario footprints and
    /// retained CRN draw vectors), kept so figures can render per-scenario
    /// panels and paired deltas without re-assessing.
    pub sweep_output: AssessmentOutput,
    /// Paired-difference deltas of every sweep scenario against the `full`
    /// baseline, from the session's common random numbers.
    pub sweep_deltas: Vec<easyc::ScenarioDelta>,
}

/// Monte-Carlo draws behind the study sweep's intervals and deltas.
const STUDY_SWEEP_DRAWS: usize = 256;

/// The scenario matrix the study sweeps by default: ground truth, the two
/// dominant missing-data situations, and two site-knowledge overrides.
pub fn default_scenario_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new()
        .with(DataScenario::full("full"))
        .with(DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ))
        .with(DataScenario::masked(
            "no-structure",
            MetricMask::ALL
                .without(MetricBit::Nodes)
                .without(MetricBit::Gpus)
                .without(MetricBit::Cpus),
        ))
        .with(
            DataScenario::full("site-pue-1.1").with_overrides(OverrideSet {
                pue: Some(1.1),
                ..OverrideSet::NONE
            }),
        )
        .with(
            DataScenario::full("clean-grid-50g").with_overrides(OverrideSet {
                aci_g_per_kwh: Some(50.0),
                ..OverrideSet::NONE
            }),
        )
}

/// Runs everything with the default 500-system synthetic list.
pub fn run_study(seed: u64) -> StudyReport {
    let rows = top500::appendix::load();
    let pipeline = StudyPipeline::new(500, seed).run();
    let sweep_output = Assessment::of(&pipeline.enriched)
        .config(EasyCConfig::default())
        .scenarios(&default_scenario_matrix())
        .uncertainty(STUDY_SWEEP_DRAWS)
        .seed(seed)
        .run();
    let sweep = fleet::summarize_slices(sweep_output.slices());
    let sweep_deltas = fleet::compare_to_baseline(&sweep_output, "full");

    let fig7 = Fig7::from_appendix(&rows);
    let fig9 = Fig9::from_appendix(&rows);
    let fig10 = figures::fig10(&rows);
    let reference = ReferenceHeadline {
        op_coverage_top500: rows
            .iter()
            .filter(|r| r.operational.top500.is_some())
            .count(),
        op_coverage_public: rows
            .iter()
            .filter(|r| r.operational.public.is_some())
            .count(),
        emb_coverage_top500: rows.iter().filter(|r| r.embodied.top500.is_some()).count(),
        emb_coverage_public: rows.iter().filter(|r| r.embodied.public.is_some()).count(),
        op_total_mt: fig7.op_interpolated.total_mt,
        emb_total_mt: fig7.emb_interpolated.total_mt,
        op_sensitivity: fig9.operational.relative_change(),
        emb_sensitivity_kmt: fig9.embodied.total_change_mt() / 1000.0,
        op_vehicles: fig7.op_interpolated.equivalences().vehicles,
        emb_vehicles: fig7.emb_interpolated.equivalences().vehicles,
        op_growth_2030: fig10.operational.overall_growth(),
        emb_growth_2030: fig10.embodied.overall_growth(),
    };
    let pipeline_headline = PipelineHeadline {
        systems: pipeline.full.len(),
        op_coverage_baseline: pipeline.baseline_results.coverage.operational,
        op_coverage_enriched: pipeline.enriched_results.coverage.operational,
        emb_coverage_baseline: pipeline.baseline_results.coverage.embodied,
        emb_coverage_enriched: pipeline.enriched_results.coverage.embodied,
        op_total_mt: pipeline.operational_summary.full_total,
        emb_total_mt: pipeline.embodied_summary.full_total,
    };
    StudyReport {
        headline: Headline {
            reference,
            pipeline: pipeline_headline,
        },
        pipeline,
        sweep,
        sweep_output,
        sweep_deltas,
    }
}

impl StudyReport {
    /// One-screen text summary.
    pub fn summary(&self) -> String {
        let r = &self.headline.reference;
        let p = &self.headline.pipeline;
        format!(
            "Top 500 carbon footprint (reference, from embedded Table II)\n\
             ------------------------------------------------------------\n\
             coverage  operational: {}/500 (top500.org) -> {}/500 (+public)\n\
             coverage  embodied:    {}/500 (top500.org) -> {}/500 (+public)\n\
             total     operational: {:.2} M MT CO2e (~{:.0}k vehicles)\n\
             total     embodied:    {:.2} M MT CO2e (~{:.0}k vehicles)\n\
             sensitivity: operational {:+.2}%, embodied {:+.1} kMT\n\
             2030 projection: operational x{:.2}, embodied x{:.2}\n\
             \n\
             Synthetic pipeline ({} systems, EasyC end-to-end)\n\
             ------------------------------------------------------------\n\
             coverage  operational: {} -> {}\n\
             coverage  embodied:    {} -> {}\n\
             totals    operational {:.2} M MT, embodied {:.2} M MT\n",
            r.op_coverage_top500,
            r.op_coverage_public,
            r.emb_coverage_top500,
            r.emb_coverage_public,
            r.op_total_mt / 1e6,
            r.op_vehicles / 1e3,
            r.emb_total_mt / 1e6,
            r.emb_vehicles / 1e3,
            r.op_sensitivity * 100.0,
            r.emb_sensitivity_kmt,
            r.op_growth_2030,
            r.emb_growth_2030,
            p.systems,
            p.op_coverage_baseline,
            p.op_coverage_enriched,
            p.emb_coverage_baseline,
            p.emb_coverage_enriched,
            p.op_total_mt / 1e6,
            p.emb_total_mt / 1e6,
        )
    }

    /// Writes all figure/table artifacts under `dir`.
    pub fn write_artifacts(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let rows = top500::appendix::load();
        fs::write(dir.join("summary.txt"), self.summary())?;
        fs::write(dir.join("headline.json"), self.headline.to_json())?;
        fs::write(
            dir.join("fig2_missingness.csv"),
            Fig2::from_list(&self.pipeline.baseline).to_csv(),
        )?;
        fs::write(
            dir.join("table1_incompleteness.csv"),
            Table1::from_lists(&self.pipeline.baseline, &self.pipeline.enriched).to_csv(),
        )?;
        fs::write(
            dir.join("fig3_baseline_scatter.csv"),
            CarbonByRank::fig3(&rows).to_csv(),
        )?;
        fs::write(
            dir.join("fig4_coverage_reference.csv"),
            Fig4::reference(&rows).to_csv(),
        )?;
        fs::write(
            dir.join("fig4_coverage_pipeline.csv"),
            Fig4::pipeline(&self.pipeline).to_csv(),
        )?;
        fs::write(
            dir.join("fig5_op_coverage_ranges.csv"),
            CoverageByRange::from_appendix(&rows, false).to_csv(),
        )?;
        fs::write(
            dir.join("fig6_emb_coverage_ranges.csv"),
            CoverageByRange::from_appendix(&rows, true).to_csv(),
        )?;
        fs::write(
            dir.join("fig8_full_assessment.csv"),
            CarbonByRank::fig8(&rows).to_csv(),
        )?;
        fs::write(
            dir.join("fig9_sensitivity.csv"),
            Fig9::from_appendix(&rows).to_csv(),
        )?;
        let p = figures::fig10(&rows);
        let mut fig10_csv = String::from("year,operational_mt,embodied_mt\n");
        for (op, emb) in p.operational.points.iter().zip(&p.embodied.points) {
            fig10_csv.push_str(&format!("{},{:.0},{:.0}\n", op.year, op.value, emb.value));
        }
        fs::write(dir.join("fig10_projection.csv"), fig10_csv)?;
        let (op_panel, emb_panel) = figures::fig11(&rows);
        let mut fig11_csv = String::from("year,op_projected,op_ideal,emb_projected,emb_ideal\n");
        for i in 0..op_panel.projected.points.len() {
            fig11_csv.push_str(&format!(
                "{},{:.3},{:.3},{:.3},{:.3}\n",
                op_panel.projected.points[i].year,
                op_panel.projected.points[i].value,
                op_panel.ideal.points[i].value,
                emb_panel.projected.points[i].value,
                emb_panel.ideal.points[i].value,
            ));
        }
        fs::write(dir.join("fig11_perf_per_carbon.csv"), fig11_csv)?;
        fs::write(
            dir.join("table2_per_system.txt"),
            figures::table2_render(&rows),
        )?;
        fs::write(
            dir.join("scenario_sweep.csv"),
            fleet::sweep_to_csv(&self.sweep),
        )?;
        // Paired scenario deltas (variant − full) with CRN-tight intervals.
        fs::write(
            dir.join("sweep_deltas.csv"),
            fleet::deltas_to_csv(&self.sweep_deltas),
        )?;
        // Coverage-by-rank panels per sweep scenario (the generalised
        // Figures 5/6 over the whole scenario matrix).
        fs::write(
            dir.join("sweep_op_coverage_ranges.csv"),
            CoverageByRange::from_slices(self.sweep_output.slices(), false).to_csv(),
        )?;
        fs::write(
            dir.join("sweep_emb_coverage_ranges.csv"),
            CoverageByRange::from_slices(self.sweep_output.slices(), true).to_csv(),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use top500::stream::InMemoryChunks;
    use top500::synthetic::{generate_full, SyntheticConfig};

    fn sweep_matrix() -> ScenarioMatrix {
        ScenarioMatrix::new()
            .with(DataScenario::full("full"))
            .with(DataScenario::masked(
                "no-power",
                MetricMask::ALL
                    .without(MetricBit::PowerKw)
                    .without(MetricBit::AnnualEnergy),
            ))
    }

    #[test]
    fn sweep_csv_writer_byte_identical_to_in_memory_artifact() {
        let list = generate_full(&SyntheticConfig {
            n: 70,
            ..Default::default()
        });
        let matrix = sweep_matrix();
        let expected =
            frame::csv::write(&Assessment::of(&list).scenarios(&matrix).run().to_frame());
        let dir = std::env::temp_dir();
        for rows in [1usize, 13, 70, 500] {
            let target = dir.join(format!("sweep-writer-{}-{rows}.csv", std::process::id()));
            let mut writer = SweepCsvWriter::create(&target, matrix.len()).unwrap();
            Assessment::stream(InMemoryChunks::new(&list, rows))
                .scenarios(&matrix)
                .rows(|block| writer.append(&block))
                .run()
                .unwrap();
            assert!(writer.error().is_none());
            let finished = writer.finish().unwrap();
            assert_eq!(finished, target);
            let streamed = fs::read_to_string(&target).unwrap();
            assert_eq!(streamed, expected, "rows {rows}");
            // The spill sidecars (named `<target>.<stamp>.partN`) must be
            // gone: no sibling may share the target's name as a prefix.
            let stem = target.file_name().unwrap().to_string_lossy().to_string();
            let leftovers: Vec<String> = fs::read_dir(target.parent().unwrap())
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().to_string())
                .filter(|name| name.starts_with(&format!("{stem}.")))
                .collect();
            assert!(leftovers.is_empty(), "sidecars left behind: {leftovers:?}");
            fs::remove_file(&target).ok();
        }
    }

    #[test]
    fn sharded_spill_naming_keeps_artifact_byte_identical() {
        let list = generate_full(&SyntheticConfig {
            n: 40,
            ..Default::default()
        });
        let matrix = sweep_matrix();
        let expected =
            frame::csv::write(&Assessment::of(&list).scenarios(&matrix).run().to_frame());
        let target = std::env::temp_dir().join(format!("sweep-sharded-{}.csv", std::process::id()));
        let mut writer = SweepCsvWriter::create_sharded(&target, matrix.len(), 5).unwrap();
        // Mid-flight the sidecars must carry the shard tag, so concurrent
        // shard writers next to one target can never collide by name.
        let stem = target.file_name().unwrap().to_string_lossy().to_string();
        let sidecars: Vec<String> = fs::read_dir(target.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|name| name.starts_with(&format!("{stem}.")))
            .collect();
        assert_eq!(sidecars.len(), matrix.len());
        assert!(
            sidecars.iter().all(|name| name.contains(".s5.part")),
            "sidecars must be shard-tagged: {sidecars:?}"
        );
        Assessment::stream(InMemoryChunks::new(&list, 7))
            .scenarios(&matrix)
            .rows(|block| writer.append(&block))
            .run()
            .unwrap();
        assert!(writer.error().is_none());
        writer.finish().unwrap();
        assert_eq!(fs::read_to_string(&target).unwrap(), expected);
        let leftovers: Vec<String> = fs::read_dir(target.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|name| name.starts_with(&format!("{stem}.")))
            .collect();
        assert!(leftovers.is_empty(), "sidecars left behind: {leftovers:?}");
        fs::remove_file(&target).ok();
    }

    #[test]
    fn sweep_csv_writer_empty_stream_writes_header_only() {
        let target = std::env::temp_dir().join(format!("sweep-empty-{}.csv", std::process::id()));
        let writer = SweepCsvWriter::create(&target, 0).unwrap();
        writer.finish().unwrap();
        let text = fs::read_to_string(&target).unwrap();
        assert_eq!(
            text,
            "scenario,rank,operational_mt,embodied_mt,power_kw,pue,utilization,power_path,note\n"
        );
        fs::remove_file(&target).ok();
    }

    #[test]
    fn sweep_csv_writer_latches_out_of_range_scenario() {
        let list = generate_full(&SyntheticConfig {
            n: 5,
            ..Default::default()
        });
        let matrix = sweep_matrix();
        let target = std::env::temp_dir().join(format!("sweep-oob-{}.csv", std::process::id()));
        // One spill file for a two-scenario matrix: the second scenario's
        // first block must latch an error that finish() surfaces.
        let mut writer = SweepCsvWriter::create(&target, 1).unwrap();
        Assessment::stream(InMemoryChunks::new(&list, 2))
            .scenarios(&matrix)
            .rows(|block| writer.append(&block))
            .run()
            .unwrap();
        assert!(writer.error().is_some());
        assert!(writer.finish().is_err());
        fs::remove_file(&target).ok();
    }

    #[test]
    fn pipeline_stream_sweep_to_csv_matches_in_memory_artifact() {
        let pipeline = StudyPipeline::new(90, 3);
        let matrix = sweep_matrix();
        let target =
            std::env::temp_dir().join(format!("pipeline-stream-sweep-{}.csv", std::process::id()));
        let summaries = pipeline.stream_sweep_to_csv(&matrix, 17, &target).unwrap();
        assert_eq!(summaries.len(), 2);
        let expected = frame::csv::write(
            &Assessment::of(&generate_full(&pipeline.synthetic))
                .scenarios(&matrix)
                .run()
                .to_frame(),
        );
        assert_eq!(fs::read_to_string(&target).unwrap(), expected);
        fs::remove_file(&target).ok();
    }

    #[test]
    fn study_headline_consistent() {
        let report = run_study(7);
        let r = &report.headline.reference;
        assert_eq!(r.op_coverage_top500, 391);
        assert_eq!(r.emb_coverage_public, 404);
        assert!((r.op_total_mt / 1.39e6 - 1.0).abs() < 0.01);
        assert!((r.emb_total_mt / 1.88e6 - 1.0).abs() < 0.01);
        assert!((r.op_vehicles / 325_000.0 - 1.0).abs() < 0.02);
    }

    #[test]
    fn study_sweep_covers_default_matrix() {
        let report = run_study(7);
        assert_eq!(report.sweep.len(), default_scenario_matrix().len());
        let full = &report.sweep[0];
        let no_structure = report
            .sweep
            .iter()
            .find(|s| s.name == "no-structure")
            .unwrap();
        assert!(no_structure.coverage.embodied < full.coverage.embodied);
        let clean = report
            .sweep
            .iter()
            .find(|s| s.name == "clean-grid-50g")
            .unwrap();
        assert!(clean.operational.total_mt < full.operational.total_mt);
        // One paired delta per non-baseline scenario, each tighter than
        // differencing the two independent per-scenario bands.
        assert_eq!(
            report.sweep_deltas.len(),
            default_scenario_matrix().len() - 1
        );
        let clean_delta = report
            .sweep_deltas
            .iter()
            .find(|d| d.variant == "clean-grid-50g")
            .unwrap();
        let paired = clean_delta.operational.unwrap();
        assert!(
            paired.hi < 0.0,
            "cleaner grid must lower the total: {paired:?}"
        );
        let naive = easyc::Interval::independent_difference(
            &report.sweep_output.interval("clean-grid-50g").unwrap(),
            &report.sweep_output.interval("full").unwrap(),
        );
        assert!(paired.width() < naive.width());
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let report = run_study(7);
        let text = report.summary();
        assert!(text.contains("391/500"));
        assert!(text.contains("490/500"));
        assert!(text.contains("1.39 M MT"));
        assert!(text.contains("1.88 M MT"));
    }

    #[test]
    fn artifacts_written() {
        let dir = std::env::temp_dir().join(format!("easyc-artifacts-{}", std::process::id()));
        let report = run_study(7);
        report.write_artifacts(&dir).unwrap();
        for file in [
            "summary.txt",
            "headline.json",
            "fig2_missingness.csv",
            "table1_incompleteness.csv",
            "fig3_baseline_scatter.csv",
            "fig4_coverage_reference.csv",
            "fig5_op_coverage_ranges.csv",
            "fig6_emb_coverage_ranges.csv",
            "fig8_full_assessment.csv",
            "fig9_sensitivity.csv",
            "fig10_projection.csv",
            "fig11_perf_per_carbon.csv",
            "table2_per_system.txt",
            "scenario_sweep.csv",
            "sweep_deltas.csv",
            "sweep_op_coverage_ranges.csv",
            "sweep_emb_coverage_ranges.csv",
        ] {
            assert!(dir.join(file).exists(), "{file} missing");
        }
        let json = std::fs::read_to_string(dir.join("headline.json")).unwrap();
        assert!(json.contains("op_coverage_top500"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
