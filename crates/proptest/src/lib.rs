#![warn(missing_docs)]

//! A minimal, API-compatible stand-in for the `proptest` property-testing
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the subset of the proptest surface its tests use: the [`proptest!`]
//! macro, the [`Strategy`] trait with `prop_map`, numeric range strategies,
//! tuple composition, `prop::collection::vec`, `prop::option::of`,
//! `prop::bool::ANY`, simple `"[a-z]{m,n}"` string patterns, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Semantics: each property runs for a fixed number of cases drawn from a
//! deterministic RNG seeded per test (seeded from the test name), so runs
//! are reproducible. There is no shrinking — a failing case panics with the
//! assertion message; the deterministic seed makes the failure replayable.

use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs.
pub const DEFAULT_CASES: usize = 64;

/// Upper bound on `prop_assume!` rejections before a property gives up.
pub const MAX_REJECTS: usize = 4096;

// ------------------------------------------------------------------- RNG

/// Deterministic SplitMix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator from an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Deterministic generator derived from a test name.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ------------------------------------------------------------- Strategy

/// A generator of test values (shim of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// `&str` regex-like patterns of the shape `[class]{m,n}` (optionally a
/// sequence of such atoms, literals allowed). Supports character ranges
/// inside the class, e.g. `"[ -~]{0,20}"` or `"[a-z0-9]{4}"`.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string pattern {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_len as u64
                + if atom.max_len > atom.min_len {
                    rng.below((atom.max_len - atom.min_len + 1) as u64)
                } else {
                    0
                };
            for _ in 0..n {
                let c = atom.alphabet[rng.below(atom.alphabet.len() as u64) as usize];
                out.push(c);
            }
        }
        out
    }
}

struct PatternAtom {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize,
}

fn parse_pattern(pattern: &str) -> Result<Vec<PatternAtom>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .ok_or("unterminated character class")?
                + i;
            let mut alphabet = Vec::new();
            let class = &chars[i + 1..close];
            let mut j = 0;
            while j < class.len() {
                if j + 2 < class.len() && class[j + 1] == '-' {
                    let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                    if lo > hi {
                        return Err(format!("inverted range {}-{}", class[j], class[j + 2]));
                    }
                    alphabet.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    alphabet.push(class[j]);
                    j += 1;
                }
            }
            i = close + 1;
            alphabet
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        if alphabet.is_empty() {
            return Err("empty character class".to_string());
        }
        let (min_len, max_len) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated repetition")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().map_err(|e| e.to_string())?,
                    hi.trim().parse::<usize>().map_err(|e| e.to_string())?,
                ),
                None => {
                    let n = body.trim().parse::<usize>().map_err(|e| e.to_string())?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if min_len > max_len {
            return Err(format!("repetition {{{min_len},{max_len}}} is inverted"));
        }
        atoms.push(PatternAtom {
            alphabet,
            min_len,
            max_len,
        });
    }
    Ok(atoms)
}

// --------------------------------------------------------- prop modules

/// Strategy constructors, mirroring `proptest::prop`'s namespace.
pub mod prop {
    use super::{Strategy, TestRng};

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Size bounds for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Generates `Vec`s of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// The [`vec()`] strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo + 1) as u64;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Generates `None` half the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// The [`of`] strategy.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 0 {
                    Some(self.inner.new_value(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn new_value(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 0
            }
        }
    }

    /// Numeric strategy namespace (ranges themselves implement
    /// [`Strategy`]; this module exists for API familiarity).
    pub mod num {}

    // Re-exported so `prop::Strategy` paths also work.
    pub use super::Strategy as StrategyTrait;

    /// Draws one value from a strategy (used by generated test runners).
    pub fn draw<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
        strategy.new_value(rng)
    }
}

// ----------------------------------------------------------- test runner

/// Why a property case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// An assertion failed; the property fails with this message.
    Fail(String),
}

/// Everything the [`proptest!`] macro needs in scope.
pub mod test_runner {
    pub use super::{TestCaseError, TestRng};
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`DEFAULT_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let mut cases = 0usize;
                let mut rejects = 0usize;
                while cases < $crate::DEFAULT_CASES {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::new_value(&$strat, &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => cases += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejects += 1;
                            assert!(
                                rejects < $crate::MAX_REJECTS,
                                "property {} rejected too many cases ({} accepted)",
                                stringify!($name),
                                cases
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// mid-draw) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..10.0, n in 1usize..50) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..50).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn option_of_produces_both(values in prop::collection::vec(prop::option::of(0u64..9), 64..65)) {
            prop_assert!(values.iter().any(Option::is_some));
            prop_assert!(values.iter().any(Option::is_none));
        }

        #[test]
        fn string_pattern_matches_class(s in "[ -~]{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn prop_map_transforms(y in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!(y % 2 == 0 && y < 20);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::from_name("t");
        let mut b = super::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fixed_count_pattern() {
        let mut rng = super::TestRng::new(1);
        let s = super::Strategy::new_value(&"[a-c]{4}", &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
    }
}
