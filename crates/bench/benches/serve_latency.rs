//! Resident-service latency: what keeping a warm [`FleetState`] buys over
//! a cold session. Four rungs on a 2,000-system fleet — cold session
//! (parse-adjacent full build each request), resident startup (build +
//! warm, paid once), warm cache-hit query, and the O(k) incremental
//! `update_rows` repair — plus the same warm query over loopback TCP
//! through the serve front end. The warm and incremental paths are
//! asserted bit-identical to the cold session before any timing. Run with
//! `BENCH_JSON=BENCH_serve.json` to capture machine-readable numbers.

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, Criterion};
use easyc::{Assessment, EasyCConfig, FleetState};
use top500::synthetic::{generate_full, SyntheticConfig};

const N: u32 = 2000;
const TOUCHED: usize = 8;

fn bench_serve_latency(c: &mut Criterion) {
    let list = generate_full(&SyntheticConfig {
        n: N,
        seed: BENCH_SEED,
        ..Default::default()
    });
    let mut state = FleetState::from_list(list.clone(), EasyCConfig::default());
    state.warm();

    // The warm path must be the cold path, bit for bit, before it gets to
    // claim a speedup.
    let cold = Assessment::of(&list)
        .workers(1)
        .uncertainty(64)
        .seed(9)
        .run();
    let warm = state.query().workers(1).uncertainty(64).seed(9).run();
    assert_eq!(cold.intervals()[0], warm.intervals()[0]);
    for (a, b) in cold.slices()[0]
        .footprints
        .iter()
        .zip(&warm.slices()[0].footprints)
    {
        assert_eq!(
            a.operational.as_ref().map(|o| o.mt_co2e.to_bits()).ok(),
            b.operational.as_ref().map(|o| o.mt_co2e.to_bits()).ok()
        );
    }

    // Cold vs warm at draws=0: the pure footprint-cache win, with no
    // Monte-Carlo time diluting it.
    c.bench_function("serve_latency/cold_session_2000", |b| {
        b.iter(|| Assessment::of(std::hint::black_box(&list)).workers(1).run())
    });
    c.bench_function("serve_latency/warm_query_2000", |b| {
        b.iter(|| std::hint::black_box(&state).query().workers(1).run())
    });

    // The same pair with 64 Monte-Carlo draws: the draw kernels re-run on
    // both sides (CRN streams are keyed by system, not cached), so the
    // cache saves only the estimation phase.
    c.bench_function("serve_latency/cold_session_draws64_2000", |b| {
        b.iter(|| {
            Assessment::of(std::hint::black_box(&list))
                .workers(1)
                .uncertainty(64)
                .seed(9)
                .run()
        })
    });

    // Residency startup: columns + serial footprint fold, paid once.
    c.bench_function("serve_latency/state_build_and_warm_2000", |b| {
        b.iter(|| {
            let mut s =
                FleetState::from_list(std::hint::black_box(list.clone()), EasyCConfig::default());
            s.warm();
            s
        })
    });

    c.bench_function("serve_latency/warm_query_draws64_2000", |b| {
        b.iter(|| {
            std::hint::black_box(&state)
                .query()
                .workers(1)
                .uncertainty(64)
                .seed(9)
                .run()
        })
    });

    // Incremental: splice 8 edited rows, retract the trailing fold back to
    // the first touched row, re-estimate only the touched footprints and
    // re-absorb — the cache stays warm throughout.
    let mut edit_a: Vec<_> = list.systems()[100..100 + TOUCHED].to_vec();
    let mut edit_b = edit_a.clone();
    for r in &mut edit_a {
        r.power_kw = Some(2_500.0);
    }
    for r in &mut edit_b {
        r.power_kw = Some(3_500.0);
    }
    let mut flip = false;
    c.bench_function("serve_latency/incremental_update_rows_k8_2000", |b| {
        b.iter(|| {
            flip = !flip;
            let rows = if flip { edit_a.clone() } else { edit_b.clone() };
            state
                .update_rows(100, rows)
                .expect("rank-preserving splice")
        })
    });
    assert!(
        state.is_warm(),
        "the incremental path must keep the cache warm"
    );

    // The warm query through the full serve stack: JSONL over loopback
    // TCP, bounded queue, pool worker, pinned-fold summary.
    let mut wire_state = FleetState::from_list(list, EasyCConfig::default());
    wire_state.warm();
    let server = serve::spawn(wire_state, "127.0.0.1:0", serve::ServeConfig::default())
        .expect("bind loopback");
    let mut client = serve::Client::connect(server.addr()).expect("connect");
    let request = r#"{"op":"assess","workers":1}"#;
    let first = client.request_raw(request).expect("assess");
    assert!(first.contains(r#""ok":true"#) && first.contains(r#""warm":true"#));
    c.bench_function("serve_latency/wire_assess_warm_2000", |b| {
        b.iter(|| {
            client
                .request_raw(std::hint::black_box(request))
                .expect("assess")
        })
    });
    server.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve_latency
}
criterion_main!(benches);
