//! Figure 6: embodied coverage by rank range, two data scenarios.

use analysis::figures::CoverageByRange;
use bench::{appendix_rows, banner, pipeline_run};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig6(c: &mut Criterion) {
    let rows = appendix_rows();
    let fig = CoverageByRange::from_appendix(&rows, true);
    banner("Figure 6", "embodied coverage by rank range");
    println!("{}", fig.render());
    let out = pipeline_run();
    println!(
        "pipeline edition (synthetic):\n{}",
        CoverageByRange::from_pipeline(&out, true).render()
    );

    c.bench_function("fig6/emb_coverage_by_range_reference", |b| {
        b.iter(|| CoverageByRange::from_appendix(std::hint::black_box(&rows), true))
    });
    c.bench_function("fig6/emb_coverage_by_range_pipeline", |b| {
        b.iter(|| CoverageByRange::from_pipeline(std::hint::black_box(&out), true))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig6
}
criterion_main!(benches);
