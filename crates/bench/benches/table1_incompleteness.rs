//! Table I: data EasyC requires vs what each source provides.

use analysis::figures::Table1;
use bench::{banner, pipeline_run};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let out = pipeline_run();
    let table = Table1::from_lists(&out.baseline, &out.enriched);
    banner(
        "Table I",
        "# systems incomplete per metric (top500.org vs +public)",
    );
    println!("{}", table.render());
    println!("paper reference: nodes/GPUs 209->86, memory 499->292, SSD 500->450");

    c.bench_function("table1/incompleteness_counts", |b| {
        b.iter(|| {
            Table1::from_lists(
                std::hint::black_box(&out.baseline),
                std::hint::black_box(&out.enriched),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
