//! Figure 9: change between Baseline and Baseline+PublicInfo.

use analysis::figures::Fig9;
use bench::{appendix_rows, banner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig9(c: &mut Criterion) {
    let rows = appendix_rows();
    let fig = Fig9::from_appendix(&rows);
    banner("Figure 9", "sensitivity to adding public information");
    println!(
        "operational: {:+.0} MT ({:+.2}%), newly covered {}",
        fig.operational.total_change_mt(),
        fig.operational.relative_change() * 100.0,
        fig.operational.newly_covered
    );
    println!(
        "embodied:    {:+.0} MT ({:+.1}%), newly covered {}",
        fig.embodied.total_change_mt(),
        fig.embodied.relative_change() * 100.0,
        fig.embodied.newly_covered
    );
    println!("paper: +2.85% (38 kMT) operational; +670.48 kMT (78%) embodied");

    c.bench_function("fig9/sensitivity_from_appendix", |b| {
        b.iter(|| Fig9::from_appendix(std::hint::black_box(&rows)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig9
}
criterion_main!(benches);
