//! Figure 3: carbon versus rank with top500.org data only.

use analysis::figures::CarbonByRank;
use bench::{appendix_rows, banner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig3(c: &mut Criterion) {
    let rows = appendix_rows();
    let fig = CarbonByRank::fig3(&rows);
    banner(
        "Figure 3",
        "Top 500 carbon footprint vs rank (Top500.org data)",
    );
    println!(
        "operational points: {} / 500 (paper: 391)\nembodied points:    {} / 500 (paper: 283)",
        fig.operational_count(),
        fig.embodied_count()
    );
    let max_op = fig
        .points
        .iter()
        .filter_map(|(_, op, _)| *op)
        .fold(0.0, f64::max);
    let max_emb = fig
        .points
        .iter()
        .filter_map(|(_, _, emb)| *emb)
        .fold(0.0, f64::max);
    println!(
        "max operational: {:.0} kMT; max embodied: {:.0} kMT",
        max_op / 1e3,
        max_emb / 1e3
    );
    for (rank, op, emb) in fig.points.iter().take(10) {
        println!(
            "  #{rank:<3} op {:>8} emb {:>8}",
            op.map(|v| format!("{v:.0}")).unwrap_or_default(),
            emb.map(|v| format!("{v:.0}")).unwrap_or_default()
        );
    }

    c.bench_function("fig3/baseline_scatter", |b| {
        b.iter(|| CarbonByRank::fig3(std::hint::black_box(&rows)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig3
}
criterion_main!(benches);
