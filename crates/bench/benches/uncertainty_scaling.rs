//! Monte-Carlo uncertainty at fleet scale: the DrawPlan phase under
//! (draws × scenarios) load, serial vs pooled draw folding, and a
//! self-verifying proof of the common-random-numbers tightness claim.
//!
//! The preamble asserts the CRN contract in release mode — the paired
//! `compare` interval on the synthetic 500 is strictly tighter than the
//! naive independent-band difference, and the streamed fold reproduces the
//! in-memory delta bit for bit. Criterion groups then sweep draw count and
//! matrix width on a 2 000-system fleet, and pit the serial one-worker
//! fold against the pooled (scenario × draw-chunk) plan.

use bench::{banner, BENCH_SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easyc::scenario::{DataScenario, MetricBit, MetricMask, OverrideSet, ScenarioMatrix};
use easyc::{Assessment, DrawPlan, Interval};
use top500::stream::SyntheticChunks;
use top500::synthetic::{generate_full, SyntheticConfig};

fn config(n: u32) -> SyntheticConfig {
    SyntheticConfig {
        n,
        seed: BENCH_SEED,
        ..Default::default()
    }
}

/// A matrix of the given width: `full` plus masked/override variants.
fn matrix(scenarios: usize) -> ScenarioMatrix {
    let variants = [
        DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ),
        DataScenario::full("clean-grid").with_overrides(OverrideSet {
            aci_g_per_kwh: Some(50.0),
            ..OverrideSet::NONE
        }),
        DataScenario::masked(
            "no-structure",
            MetricMask::ALL
                .without(MetricBit::Nodes)
                .without(MetricBit::Gpus)
                .without(MetricBit::Cpus),
        ),
        DataScenario::full("site-pue").with_overrides(OverrideSet {
            pue: Some(1.1),
            ..OverrideSet::NONE
        }),
    ];
    let mut m = ScenarioMatrix::new().with(DataScenario::full("full"));
    for v in variants.into_iter().take(scenarios.saturating_sub(1)) {
        m.push(v);
    }
    m
}

/// Asserts the CRN tightness claim and in-memory/streamed delta
/// bit-identity on the synthetic 500 — the bench self-verifies the
/// contract it measures.
fn crn_tightness_proof() {
    const DRAWS: usize = 1_000;
    let list = generate_full(&config(500));
    let plan = DrawPlan::new(DRAWS)
        .with_confidence(0.9)
        .with_seed(BENCH_SEED);
    let start = std::time::Instant::now();
    let output = Assessment::of(&list)
        .scenarios(&matrix(3))
        .workers(parallel::default_workers())
        .draw_plan(plan)
        .run();
    let elapsed = start.elapsed();
    for variant in ["no-power", "clean-grid"] {
        let paired = output
            .compare("full", variant)
            .and_then(|d| d.operational)
            .expect("paired operational delta");
        let naive = Interval::independent_difference(
            &output.interval(variant).expect("variant interval"),
            &output.interval("full").expect("baseline interval"),
        );
        assert!(
            paired.width() < naive.width(),
            "{variant}: paired {} not tighter than naive {}",
            paired.width(),
            naive.width()
        );
        println!(
            "{variant:>11} − full: paired op delta {:+.0} MT [{:+.0}, {:+.0}] — \
             {:.1}x tighter than the independent-band difference",
            paired.point,
            paired.lo,
            paired.hi,
            naive.width() / paired.width().max(1e-9)
        );
    }
    let streamed = Assessment::stream(SyntheticChunks::new(config(500), 64))
        .scenarios(&matrix(3))
        .draw_plan(plan)
        .run()
        .expect("synthetic source cannot fail");
    assert_eq!(
        streamed.compare("full", "no-power"),
        output.compare("full", "no-power"),
        "streamed delta drifted from the in-memory session"
    );
    println!(
        "CRN proof: 500 systems x 3 scenarios x {DRAWS} draws in {:.2}s; \
         streamed compare bit-identical: OK",
        elapsed.as_secs_f64()
    );
}

fn bench_uncertainty(c: &mut Criterion) {
    banner(
        "Uncertainty scaling",
        "DrawPlan Monte-Carlo phase: draws x scenarios sweeps, serial vs pooled folding",
    );
    crn_tightness_proof();

    const FLEET: u32 = 2_000;
    let list = generate_full(&config(FLEET));
    let workers = parallel::default_workers();

    // Draw-count sweep at a fixed two-scenario matrix: the phase is
    // O(draws × estimable systems × scenarios) RNG evaluations.
    let mut group = c.benchmark_group("uncertainty/draws_2k_fleet");
    let m = matrix(2);
    for draws in [256usize, 1_024, 4_096] {
        group.throughput(Throughput::Elements(draws as u64));
        group.bench_with_input(BenchmarkId::from_parameter(draws), &draws, |b, &draws| {
            b.iter(|| {
                Assessment::of(std::hint::black_box(&list))
                    .scenarios(&m)
                    .workers(workers)
                    .uncertainty(draws)
                    .seed(BENCH_SEED)
                    .run()
            })
        });
    }
    group.finish();

    // Matrix-width sweep at fixed draws: wide matrices share one pool and
    // one extraction, so cost should grow sublinearly with scenarios.
    let mut group = c.benchmark_group("uncertainty/scenarios_2k_fleet");
    for scenarios in [1usize, 2, 5] {
        let m = matrix(scenarios);
        group.throughput(Throughput::Elements(scenarios as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(scenarios),
            &scenarios,
            |b, _| {
                b.iter(|| {
                    Assessment::of(std::hint::black_box(&list))
                        .scenarios(&m)
                        .workers(workers)
                        .uncertainty(1_024)
                        .seed(BENCH_SEED)
                        .run()
                })
            },
        );
    }
    group.finish();

    // Serial vs pooled folding of the same plan: one worker runs the
    // draws inline on the calling thread; the pooled arm interleaves
    // (scenario × draw-chunk) items. Results are bit-identical (pinned by
    // tests); the gap is the parallel speedup of the phase.
    let m = matrix(3);
    let mut group = c.benchmark_group("uncertainty/fold_2k_fleet_3_scenarios");
    group.throughput(Throughput::Elements(2_048));
    group.bench_function("serial", |b| {
        b.iter(|| {
            Assessment::of(std::hint::black_box(&list))
                .scenarios(&m)
                .workers(1)
                .uncertainty(2_048)
                .seed(BENCH_SEED)
                .run()
        })
    });
    group.bench_function("pooled", |b| {
        b.iter(|| {
            Assessment::of(std::hint::black_box(&list))
                .scenarios(&m)
                .workers(workers)
                .uncertainty(2_048)
                .seed(BENCH_SEED)
                .run()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_uncertainty
}
criterion_main!(benches);
