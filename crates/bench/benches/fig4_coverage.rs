//! Figure 4: carbon-footprint reporting coverage per method.

use analysis::figures::Fig4;
use bench::{appendix_rows, banner, pipeline_run};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig4(c: &mut Criterion) {
    let rows = appendix_rows();
    banner(
        "Figure 4",
        "coverage: GHG vs EasyC(top500.org) vs EasyC(+public)",
    );
    println!(
        "reference (appendix Table II):\n{}",
        Fig4::reference(&rows).render()
    );
    let out = pipeline_run();
    println!(
        "pipeline (synthetic list):\n{}",
        Fig4::pipeline(&out).render()
    );

    c.bench_function("fig4/coverage_reference", |b| {
        b.iter(|| Fig4::reference(std::hint::black_box(&rows)))
    });
    c.bench_function("fig4/coverage_pipeline_full_study", |b| {
        b.iter(|| Fig4::pipeline(std::hint::black_box(&out)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig4
}
criterion_main!(benches);
