//! Figure 2: structural information reported for different data items.

use analysis::figures::Fig2;
use bench::{banner, pipeline_run};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig2(c: &mut Criterion) {
    let out = pipeline_run();
    let fig = Fig2::from_list(&out.baseline);
    banner(
        "Figure 2",
        "# of systems missing k data items (synthetic top500.org)",
    );
    println!("{}", fig.render());

    c.bench_function("fig2/missingness_histogram", |b| {
        b.iter(|| Fig2::from_list(std::hint::black_box(&out.baseline)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig2
}
criterion_main!(benches);
