//! Ablation: worker-count scaling of the parallel substrate on the
//! assessment workload (DESIGN.md calls out the build-vs-rayon decision —
//! this bench is the evidence the substrate scales).

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easyc::scenario::{DataScenario, MetricBit, MetricMask, ScenarioMatrix};
use easyc::Assessment;
use top500::synthetic::{generate_full, SyntheticConfig};

fn bench_scaling(c: &mut Criterion) {
    let list = generate_full(&SyntheticConfig {
        n: 20_000,
        seed: BENCH_SEED,
        ..Default::default()
    });

    // The session is the hot path behind every list-scale assessment.
    let mut group = c.benchmark_group("parallel/assess_20k_by_workers");
    group.throughput(Throughput::Elements(list.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                Assessment::of(std::hint::black_box(&list))
                    .workers(w)
                    .run()
                    .into_footprints()
            })
        });
    }
    group.finish();

    // Scenario-matrix scaling: three scenarios over the 20k list in one
    // session, by worker count. All (scenario × chunk) work items
    // interleave on a single thread pool — this is the scheduler the
    // ROADMAP's "single-pass matrix stages" item asked for — and the masks
    // apply as zero-copy FleetView lenses (no record clones).
    let matrix = ScenarioMatrix::new()
        .with(DataScenario::full("full"))
        .with(DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ))
        .with(DataScenario::masked(
            "no-structure",
            MetricMask::ALL
                .without(MetricBit::Nodes)
                .without(MetricBit::Gpus)
                .without(MetricBit::Cpus),
        ));
    let mut group = c.benchmark_group("parallel/session_matrix_20k_x3_by_workers");
    group.throughput(Throughput::Elements((3 * list.len()) as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                Assessment::of(std::hint::black_box(&list))
                    .workers(w)
                    .scenarios(std::hint::black_box(&matrix))
                    .run()
            })
        });
    }
    group.finish();

    let values: Vec<f64> = (0..1_000_000).map(|i| (i % 997) as f64).collect();
    let mut group = c.benchmark_group("parallel/reduce_1m_by_workers");
    group.throughput(Throughput::Elements(values.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                parallel::par_reduce(std::hint::black_box(&values), w, 0.0, |&x| x, |a, b| a + b)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
