//! Figure 7: total and average carbon footprint, covered vs interpolated.

use analysis::figures::Fig7;
use analysis::interpolate::interpolate_with_summary;
use bench::{appendix_rows, banner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig7(c: &mut Criterion) {
    let rows = appendix_rows();
    let fig = Fig7::from_appendix(&rows);
    banner(
        "Figure 7",
        "total and average operational (1 yr) + embodied carbon",
    );
    println!("{}", fig.render());
    println!("paper: 1.37M -> 1.39M MT operational (+1.74%), 1.53M -> 1.88M MT embodied (+23.18%)");

    let op_public: Vec<Option<f64>> = rows.iter().map(|r| r.operational.public).collect();
    c.bench_function("fig7/aggregate_from_appendix", |b| {
        b.iter(|| Fig7::from_appendix(std::hint::black_box(&rows)))
    });
    c.bench_function("fig7/nearest_peer_interpolation_500", |b| {
        b.iter(|| interpolate_with_summary(std::hint::black_box(&op_public), 5))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig7
}
criterion_main!(benches);
