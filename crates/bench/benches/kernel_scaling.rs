//! Columnar-kernel scaling: the struct-of-arrays assessment kernels and
//! the blocked Monte-Carlo draw kernels at fleet scale, single-threaded —
//! the perf surface the `FleetColumns` fast path is accountable for.
//! Run with `BENCH_JSON=BENCH_kernels.json` to capture machine-readable
//! numbers alongside the printed report.

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easyc::{
    Assessment, AssessmentContext, DataScenario, FleetColumns, MetricBit, MetricMask,
    ScenarioMatrix,
};
use top500::synthetic::{generate_full, SyntheticConfig};

fn matrix() -> ScenarioMatrix {
    ScenarioMatrix::new()
        .with(DataScenario::full("full"))
        .with(DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ))
        .with(DataScenario::masked(
            "no-structure",
            MetricMask::ALL
                .without(MetricBit::Nodes)
                .without(MetricBit::Gpus),
        ))
}

fn bench_kernels(c: &mut Criterion) {
    // Columns build cost: one pass over the fleet with memoised hardware
    // lookups — amortised across every scenario of a session.
    let list = generate_full(&SyntheticConfig {
        n: 2000,
        seed: BENCH_SEED,
        ..Default::default()
    });
    let ctx = AssessmentContext::new(&list, 1);
    c.bench_function("kernel_scaling/fleet_columns_build_2000", |b| {
        b.iter(|| FleetColumns::build(std::hint::black_box(ctx.list()), ctx.metrics()))
    });

    // Three-scenario matrix through the columnar kernels, single-threaded:
    // word-wide mask classification plus per-path lane sweeps.
    let matrix = matrix();
    let mut group = c.benchmark_group("kernel_scaling/matrix_assess");
    for n in [500u32, 2000, 10_000] {
        let fleet = generate_full(&SyntheticConfig {
            n,
            seed: BENCH_SEED,
            ..Default::default()
        });
        group.throughput(Throughput::Elements(3 * u64::from(n)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &fleet, |b, fleet| {
            b.iter(|| {
                Assessment::of(std::hint::black_box(fleet))
                    .workers(1)
                    .scenarios(&matrix)
                    .run()
            })
        });
    }
    group.finish();

    // Blocked Monte-Carlo draws over a 512-system fleet, two scenarios:
    // factor columns hoisted per scenario, one noise column per sample
    // shared by both scenarios (CRN keying).
    let fleet = generate_full(&SyntheticConfig {
        n: 512,
        seed: BENCH_SEED,
        ..Default::default()
    });
    let two = ScenarioMatrix::new()
        .with(DataScenario::full("full"))
        .with(DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ));
    let mut group = c.benchmark_group("kernel_scaling/blocked_draws_512x2");
    for draws in [256usize, 1024] {
        group.throughput(Throughput::Elements(draws as u64));
        group.bench_with_input(BenchmarkId::from_parameter(draws), &draws, |b, &draws| {
            b.iter(|| {
                Assessment::of(std::hint::black_box(&fleet))
                    .workers(1)
                    .scenarios(&two)
                    .uncertainty(draws)
                    .seed(7)
                    .run()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(benches);
