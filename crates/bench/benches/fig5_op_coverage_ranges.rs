//! Figure 5: operational coverage by rank range, two data scenarios.

use analysis::figures::CoverageByRange;
use bench::{appendix_rows, banner, pipeline_run};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig5(c: &mut Criterion) {
    let rows = appendix_rows();
    let fig = CoverageByRange::from_appendix(&rows, false);
    banner("Figure 5", "operational coverage by rank range");
    println!("{}", fig.render());
    let out = pipeline_run();
    let pipeline_fig = CoverageByRange::from_pipeline(&out, false);
    println!("pipeline edition (synthetic):\n{}", pipeline_fig.render());

    c.bench_function("fig5/op_coverage_by_range_reference", |b| {
        b.iter(|| CoverageByRange::from_appendix(std::hint::black_box(&rows), false))
    });
    c.bench_function("fig5/op_coverage_by_range_pipeline", |b| {
        b.iter(|| CoverageByRange::from_pipeline(std::hint::black_box(&out), false))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig5
}
criterion_main!(benches);
