//! Ablation: which lever controls future carbon growth?
//!
//! The turnover simulation exposes the projection's physics: sweeping the
//! entrants' efficiency and density improvements shows how much faster
//! silicon would have to improve to flatten the operational curve — the
//! paper's "architectural customization and accelerators is not enough"
//! claim, quantified.

use analysis::turnover::{simulate, TurnoverConfig};
use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_turnover(c: &mut Criterion) {
    banner(
        "Ablation",
        "turnover levers vs emergent per-cycle carbon growth",
    );
    println!(
        "{:>12} {:>10} {:>18} {:>18}",
        "efficiency", "density", "op growth/cycle", "emb growth/cycle"
    );
    for (eff, dens) in [(1.00, 1.00), (1.04, 1.07), (1.10, 1.10), (1.20, 1.20)] {
        let run = simulate(&TurnoverConfig {
            entrant_efficiency_factor: eff,
            entrant_density_factor: dens,
            cycles: 8,
            ..Default::default()
        });
        println!(
            "{:>12.2} {:>10.2} {:>17.1}% {:>17.1}%",
            eff,
            dens,
            run.operational_growth_per_cycle() * 100.0,
            run.embodied_growth_per_cycle() * 100.0
        );
    }
    println!("(paper regime: +5%/cycle operational, +1%/cycle embodied)");

    c.bench_function("ablation/turnover_8_cycles", |b| {
        b.iter(|| {
            simulate(std::hint::black_box(&TurnoverConfig {
                cycles: 8,
                ..Default::default()
            }))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_turnover
}
criterion_main!(benches);
