//! Microbenchmarks of the EasyC model itself: single-system assessment,
//! full-list assessment, and Monte-Carlo uncertainty.

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easyc::uncertainty::DrawPlan;
use easyc::{Assessment, EasyC};
use top500::synthetic::{generate_full, SyntheticConfig};

fn bench_model(c: &mut Criterion) {
    let tool = EasyC::new();
    let list = generate_full(&SyntheticConfig {
        n: 500,
        seed: BENCH_SEED,
        ..Default::default()
    });
    let one = list.systems()[10].clone();

    c.bench_function("model/assess_single_system", |b| {
        b.iter(|| tool.assess(std::hint::black_box(&one)))
    });

    let mut group = c.benchmark_group("model/assess_fleet_session");
    for n in [100u32, 500, 2000, 10_000] {
        let big = generate_full(&SyntheticConfig {
            n,
            seed: BENCH_SEED,
            ..Default::default()
        });
        group.throughput(Throughput::Elements(u64::from(n)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &big, |b, list| {
            b.iter(|| {
                Assessment::of(std::hint::black_box(list))
                    .run()
                    .into_footprints()
            })
        });
    }
    group.finish();

    let base = tool.assess(&one).operational.expect("estimable system");
    let plan = DrawPlan::new(1000).with_seed(7);
    c.bench_function("model/monte_carlo_1k_samples", |b| {
        b.iter(|| plan.system_operational_interval(10, std::hint::black_box(&base)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_model
}
criterion_main!(benches);
