//! Table II: per-system operational and embodied carbon, three scenarios.

use analysis::figures::table2_render;
use bench::{appendix_rows, banner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2(c: &mut Criterion) {
    let rows = appendix_rows();
    banner("Table II", "per-system footprints (first 15 of 500 shown)");
    let head: Vec<_> = rows.iter().take(15).cloned().collect();
    println!("{}", table2_render(&head));
    println!("... ({} more systems)", rows.len() - 15);

    c.bench_function("table2/load_and_validate", |b| {
        b.iter(|| std::hint::black_box(top500::appendix::load()))
    });
    c.bench_function("table2/render_500", |b| {
        b.iter(|| table2_render(std::hint::black_box(&rows)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table2
}
criterion_main!(benches);
