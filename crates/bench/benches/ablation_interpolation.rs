//! Ablation: how many peers should interpolation average?
//!
//! The paper chooses the nearest 10 (5 per side). This bench sweeps the
//! window and scores each choice against the authors' own interpolated
//! column (leave-the-gaps-in accuracy), then times the interpolator.

use analysis::interpolate::nearest_peer_interpolation;
use bench::{appendix_rows, banner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn accuracy_vs_authors(peers_per_side: usize) -> f64 {
    let rows = appendix_rows();
    let public: Vec<Option<f64>> = rows.iter().map(|r| r.operational.public).collect();
    let ours = nearest_peer_interpolation(&public, peers_per_side).expect("non-empty");
    // Score only on the rows the authors had to interpolate.
    let mut rel_err_sum = 0.0;
    let mut n = 0usize;
    for (row, our_value) in rows.iter().zip(&ours) {
        if row.operational.public.is_none() {
            let theirs = row
                .operational
                .interpolated
                .expect("interp column complete");
            rel_err_sum += ((our_value - theirs) / theirs).abs();
            n += 1;
        }
    }
    rel_err_sum / n as f64
}

fn bench_ablation(c: &mut Criterion) {
    banner(
        "Ablation",
        "interpolation window vs the authors' interpolated column",
    );
    println!("{:>6}  {:>22}", "peers", "mean relative error");
    for peers in [1usize, 2, 3, 5, 10, 25] {
        println!("{peers:>6}  {:>21.1}%", accuracy_vs_authors(peers) * 100.0);
    }
    println!("(paper uses 5 per side)");

    let rows = appendix_rows();
    let public: Vec<Option<f64>> = rows.iter().map(|r| r.operational.public).collect();
    let mut group = c.benchmark_group("ablation/interpolation_window");
    for peers in [1usize, 5, 25] {
        group.bench_with_input(BenchmarkId::from_parameter(peers), &peers, |b, &p| {
            b.iter(|| nearest_peer_interpolation(std::hint::black_box(&public), p))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_ablation
}
criterion_main!(benches);
