//! Figure 8: full Top 500 assessment by rank (with interpolated systems).

use analysis::figures::CarbonByRank;
use analysis::report::default_scenario_matrix;
use bench::{appendix_rows, banner, pipeline_run, BENCH_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use easyc::Assessment;
use top500::synthetic::{generate_full, SyntheticConfig};

fn bench_fig8(c: &mut Criterion) {
    let rows = appendix_rows();
    let fig = CarbonByRank::fig8(&rows);
    banner(
        "Figure 8",
        "full assessment: all 500 systems, interpolation included",
    );
    println!(
        "operational points: {} / 500; embodied points: {} / 500",
        fig.operational_count(),
        fig.embodied_count()
    );
    let op_total: f64 = fig.points.iter().filter_map(|(_, op, _)| *op).sum();
    let emb_total: f64 = fig.points.iter().filter_map(|(_, _, emb)| *emb).sum();
    println!(
        "totals: {:.3} M MT operational, {:.3} M MT embodied (paper: 1.39 / 1.88)",
        op_total / 1e6,
        emb_total / 1e6
    );

    c.bench_function("fig8/reference_series", |b| {
        b.iter(|| CarbonByRank::fig8(std::hint::black_box(&rows)))
    });
    // The pipeline edition: synthetic end-to-end including interpolation,
    // now routed through the staged batch engine.
    c.bench_function("fig8/pipeline_end_to_end_500", |b| {
        b.iter(|| std::hint::black_box(pipeline_run()))
    });
    // Scenario-matrix edition: the full default matrix in one interleaved
    // session (shared metric extraction, (scenario × chunk) items on one
    // pool) versus per-scenario re-assessment through fresh sessions.
    let list = generate_full(&SyntheticConfig {
        seed: BENCH_SEED,
        ..Default::default()
    });
    let matrix = default_scenario_matrix();
    c.bench_function("fig8/session_matrix_5_scenarios", |b| {
        b.iter(|| {
            Assessment::of(std::hint::black_box(&list))
                .scenarios(std::hint::black_box(&matrix))
                .run()
        })
    });
    c.bench_function("fig8/per_scenario_reassessment", |b| {
        b.iter(|| {
            matrix
                .scenarios()
                .iter()
                .map(|s| {
                    Assessment::of(std::hint::black_box(&list))
                        .scenario(s.clone())
                        .run()
                        .into_footprints()
                })
                .collect::<Vec<_>>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8
}
criterion_main!(benches);
