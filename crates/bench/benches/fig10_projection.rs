//! Figure 10: projected Top 500 carbon, 2025-2030.

use analysis::figures;
use bench::{appendix_rows, banner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig10(c: &mut Criterion) {
    let rows = appendix_rows();
    let p = figures::fig10(&rows);
    banner(
        "Figure 10",
        "projected operational and embodied carbon (kMT CO2e)",
    );
    for (op, emb) in p.operational.points.iter().zip(&p.embodied.points) {
        println!(
            "  {}  op {:>7.0}  emb {:>7.0}",
            op.year,
            op.value / 1e3,
            emb.value / 1e3
        );
    }
    println!(
        "2030/2024: op x{:.2} (paper: 1.8x), emb x{:.2} (paper: 1.1x)",
        p.operational.overall_growth(),
        p.embodied.overall_growth()
    );

    c.bench_function("fig10/projection", |b| {
        b.iter(|| figures::fig10(std::hint::black_box(&rows)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig10
}
criterion_main!(benches);
