//! Figure 11: projected performance-to-carbon ratio vs the Dennard ideal.

use analysis::figures;
use bench::{appendix_rows, banner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig11(c: &mut Criterion) {
    let rows = appendix_rows();
    let (op_panel, emb_panel) = figures::fig11(&rows);
    banner(
        "Figure 11",
        "PFlops per thousand MT CO2e, projected vs ideal (2x/18mo)",
    );
    for i in 0..op_panel.projected.points.len() {
        println!(
            "  {}  op {:>6.2} (ideal {:>7.1})   emb {:>6.2} (ideal {:>7.1})",
            op_panel.projected.points[i].year,
            op_panel.projected.points[i].value,
            op_panel.ideal.points[i].value,
            emb_panel.projected.points[i].value,
            emb_panel.ideal.points[i].value,
        );
    }
    println!("paper: projected improves ~0.2 PFlop/s per kMT per year; ideal runs away");

    c.bench_function("fig11/perf_per_carbon", |b| {
        b.iter(|| figures::fig11(std::hint::black_box(&rows)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig11
}
criterion_main!(benches);
