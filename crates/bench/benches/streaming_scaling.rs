//! Streaming ingestion at fleet scale: the larger-than-memory proof and
//! its scaling knobs.
//!
//! The headline run streams a **one-million-system** synthetic fleet
//! through the incremental session under a two-scenario matrix without
//! ever materializing it — peak fleet residency is asserted to be one
//! chunk — and cross-checks the fold against the in-memory session on the
//! synthetic 500 (bit-identity). Criterion groups then sweep chunk budget
//! and worker count on a 100k-system fleet.

use bench::{banner, BENCH_SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easyc::scenario::{DataScenario, MetricBit, MetricMask, ScenarioMatrix};
use easyc::Assessment;
use std::fs::File;
use std::io::{BufReader, Cursor};
use std::path::Path;
use top500::io::{export_csv, stream_csv};
use top500::stream::{Prefetched, ShardedCsvReader, SyntheticChunks};
use top500::synthetic::{generate_full, SyntheticConfig};

fn matrix() -> ScenarioMatrix {
    ScenarioMatrix::new()
        .with(DataScenario::full("full"))
        .with(DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ))
}

fn config(n: u32) -> SyntheticConfig {
    SyntheticConfig {
        n,
        seed: BENCH_SEED,
        ..Default::default()
    }
}

/// Streams a 1M-system fleet once and asserts the memory model: exactly
/// one chunk resident, results folded, nothing materialized.
fn million_row_proof() {
    const FLEET: u32 = 1_000_000;
    const CHUNK: usize = 8_192;
    let workers = parallel::default_workers();
    let start = std::time::Instant::now();
    let output = Assessment::stream(SyntheticChunks::new(config(FLEET), CHUNK))
        .scenarios(&matrix())
        .workers(workers)
        .run()
        .expect("synthetic source cannot fail");
    let elapsed = start.elapsed();
    assert_eq!(output.systems(), FLEET as usize);
    assert_eq!(output.chunks(), (FLEET as usize).div_ceil(CHUNK));
    assert!(
        output.peak_chunk_rows() <= CHUNK,
        "peak resident chunk {} exceeds the {CHUNK}-row budget",
        output.peak_chunk_rows()
    );
    let full = output.slice("full").expect("scenario present");
    assert_eq!(full.coverage.total, FLEET as usize);
    assert!(full.operational_total_mt > 0.0);
    println!(
        "streamed {} systems x {} scenarios in {:.1}s ({} workers): \
         {} chunks, peak residency {} rows (fleet never materialized)",
        output.systems(),
        output.len(),
        elapsed.as_secs_f64(),
        workers,
        output.chunks(),
        output.peak_chunk_rows()
    );
    println!(
        "fleet totals: {:.2} M MT operational, {:.2} M MT embodied",
        full.operational_total_mt / 1e6,
        full.embodied_total_mt / 1e6
    );

    // Bit-identity spot check against the in-memory session (synthetic
    // 500) — the same pin tests/streaming.rs enforces, kept here so a
    // release bench run self-verifies.
    let list = generate_full(&config(500));
    let session = Assessment::of(&list).scenarios(&matrix()).run();
    let streamed = Assessment::stream(SyntheticChunks::new(config(500), 64))
        .scenarios(&matrix())
        .run()
        .unwrap();
    for (s, m) in streamed.slices().iter().zip(session.slices()) {
        let op: f64 = m
            .footprints
            .iter()
            .filter_map(|f| f.operational.as_ref().ok().map(|o| o.mt_co2e))
            .fold(0.0, |acc, v| acc + v);
        assert_eq!(s.coverage, m.coverage, "streamed coverage drifted");
        assert_eq!(s.operational_total_mt, op, "streamed totals drifted");
    }
    println!("bit-identity vs in-memory session on the synthetic 500: OK");
}

/// Serial vs overlapped ingest on an ingest-heavy workload: a Top500 CSV
/// (the quote-aware chunked parser is the expensive source) streamed
/// through the session once with the parser inline and once wrapped in
/// [`Prefetched`], which parses chunk k+1 on a background thread while the
/// pool assesses chunk k. Folds must be bit-identical; the wall-clock gap
/// is the parse latency the pipeline hides (expect ≈1× on a single
/// hardware thread, where parse and assess share one core, and up to
/// `1 + parse/assess` speedup once a spare core exists).
fn overlapped_ingest_proof() {
    const ROWS: u32 = 20_000;
    const CHUNK: usize = 2_048;
    let workers = parallel::default_workers();
    let bytes = export_csv(&generate_full(&config(ROWS))).into_bytes();
    let m = matrix();

    let start = std::time::Instant::now();
    let serial = Assessment::stream(stream_csv(Cursor::new(bytes.clone()), CHUNK))
        .scenarios(&m)
        .workers(workers)
        .run()
        .expect("serial CSV stream");
    let serial_time = start.elapsed();

    let source = Prefetched::new(stream_csv(Cursor::new(bytes.clone()), CHUNK));
    let probe = source.probe();
    let start = std::time::Instant::now();
    let overlapped = Assessment::stream(source)
        .scenarios(&m)
        .workers(workers)
        .run()
        .expect("overlapped CSV stream");
    let overlapped_time = start.elapsed();

    assert_eq!(serial.systems(), overlapped.systems());
    assert_eq!(serial.chunks(), overlapped.chunks());
    for (a, b) in serial.slices().iter().zip(overlapped.slices()) {
        assert_eq!(a.coverage, b.coverage, "overlapped fold drifted");
        assert_eq!(a.operational_total_mt, b.operational_total_mt);
        assert_eq!(a.embodied_total_mt, b.embodied_total_mt);
    }
    assert!(
        probe.peak_ahead() <= 1,
        "prefetcher ran {} chunks ahead of the double-buffer bound",
        probe.peak_ahead()
    );
    println!(
        "ingest-bound CSV sweep, {ROWS} rows x {} scenarios ({} workers): \
         serial {:.2}s, overlapped {:.2}s ({:.2}x; prefetcher peak {} chunk ahead)",
        m.len(),
        workers,
        serial_time.as_secs_f64(),
        overlapped_time.as_secs_f64(),
        serial_time.as_secs_f64() / overlapped_time.as_secs_f64().max(1e-9),
        probe.peak_ahead()
    );
}

fn bench_streaming(c: &mut Criterion) {
    banner(
        "Streaming ingestion",
        "larger-than-memory sweeps: chunked synthetic fleets through the incremental session",
    );
    million_row_proof();
    overlapped_ingest_proof();

    const BENCH_FLEET: u32 = 100_000;
    let workers = parallel::default_workers();
    let m = matrix();

    // Chunk-budget sweep: how much chunking overhead does bounded memory
    // cost at a fixed worker count?
    let mut group = c.benchmark_group("streaming/sweep_100k_by_chunk_rows");
    group.throughput(Throughput::Elements(2 * u64::from(BENCH_FLEET)));
    for chunk_rows in [1_024usize, 8_192, 65_536] {
        group.bench_with_input(
            BenchmarkId::from_parameter(chunk_rows),
            &chunk_rows,
            |b, &rows| {
                b.iter(|| {
                    Assessment::stream(SyntheticChunks::new(config(BENCH_FLEET), rows))
                        .scenarios(std::hint::black_box(&m))
                        .workers(workers)
                        .run()
                        .unwrap()
                })
            },
        );
    }
    group.finish();

    // Worker sweep at a fixed chunk budget: the per-chunk (scenario ×
    // sub-chunk) plan must keep the pool busy.
    let mut group = c.benchmark_group("streaming/sweep_100k_by_workers");
    group.throughput(Throughput::Elements(2 * u64::from(BENCH_FLEET)));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                Assessment::stream(SyntheticChunks::new(config(BENCH_FLEET), 8_192))
                    .scenarios(std::hint::black_box(&m))
                    .workers(w)
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();

    // Serial vs overlapped ingest on an ingest-heavy (CSV-parsing) source:
    // the Prefetched arm hides the chunk parse behind assessment.
    const CSV_FLEET: u32 = 20_000;
    let bytes = export_csv(&generate_full(&config(CSV_FLEET))).into_bytes();
    let mut group = c.benchmark_group("streaming/csv_20k_ingest");
    group.throughput(Throughput::Elements(2 * u64::from(CSV_FLEET)));
    group.bench_function("serial", |b| {
        b.iter(|| {
            Assessment::stream(stream_csv(Cursor::new(bytes.clone()), 2_048))
                .scenarios(std::hint::black_box(&m))
                .workers(workers)
                .run()
                .unwrap()
        })
    });
    group.bench_function("overlapped", |b| {
        b.iter(|| {
            Assessment::stream(Prefetched::new(stream_csv(
                Cursor::new(bytes.clone()),
                2_048,
            )))
            .scenarios(std::hint::black_box(&m))
            .workers(workers)
            .run()
            .unwrap()
        })
    });
    group.finish();
}

/// Byte-range sharded ingest vs the single-consumer CSV stream over the
/// same on-disk file: `split_points` plans the shards, N parse lanes feed
/// the one mergeable [`easyc::PartialAssessment`] fold, and the result is
/// asserted bit-identical to the serial stream before any wall clock is
/// reported. On a single hardware thread the lanes time-slice one core, so
/// expect ≈1×; the >1× ingest scaling needs a spare core per lane (the
/// identity claim holds regardless of where the lanes run).
fn sharded_ingest_proof(path: &Path, rows: u32, chunk: usize) {
    let workers = parallel::default_workers();
    let m = matrix();
    let start = std::time::Instant::now();
    let serial = Assessment::stream(stream_csv(
        BufReader::new(File::open(path).expect("reopen CSV")),
        chunk,
    ))
    .scenarios(&m)
    .workers(workers)
    .run()
    .expect("serial CSV stream");
    let serial_time = start.elapsed();
    assert_eq!(serial.systems(), rows as usize);
    println!(
        "serial CSV ingest, {rows} rows x {} scenarios ({workers} workers): {:.2}s",
        m.len(),
        serial_time.as_secs_f64()
    );
    for shards in [1usize, 2, 4, 8] {
        let reader = ShardedCsvReader::open(path, shards, chunk).expect("plan byte-range shards");
        assert_eq!(reader.rows(), rows as usize, "split plan miscounted rows");
        let start = std::time::Instant::now();
        let sharded = Assessment::stream(reader)
            .scenarios(&m)
            .workers(workers)
            .run()
            .expect("sharded CSV stream");
        let elapsed = start.elapsed();
        assert_eq!(sharded.systems(), serial.systems());
        for (a, b) in sharded.slices().iter().zip(serial.slices()) {
            assert_eq!(a.coverage, b.coverage, "sharded fold drifted");
            assert_eq!(a.operational_total_mt, b.operational_total_mt);
            assert_eq!(a.embodied_total_mt, b.embodied_total_mt);
        }
        println!(
            "  {shards} shard(s): {:.2}s ({:.2}x vs serial; fold bit-identical)",
            elapsed.as_secs_f64(),
            serial_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
        );
    }
}

/// Sharded vs serial CSV ingest at the million-row scale (20k rows under
/// `--test` so the CI smoke stays fast): the `--shards N` pipeline end to
/// end, from `split_points` through the lane merge.
fn bench_sharded(c: &mut Criterion) {
    banner(
        "Sharded byte-range ingest",
        "split_points + N parse lanes feeding the mergeable PartialAssessment fold",
    );
    let test_mode = std::env::args().any(|a| a == "--test");
    let rows: u32 = if test_mode { 20_000 } else { 1_000_000 };
    const CHUNK: usize = 8_192;
    let path = std::env::temp_dir().join(format!("bench-shards-{}.csv", std::process::id()));
    let text = export_csv(&generate_full(&config(rows)));
    std::fs::write(&path, &text).expect("write synthetic fleet CSV");
    println!(
        "synthetic fleet CSV: {rows} rows, {:.1} MiB at {}",
        text.len() as f64 / (1024.0 * 1024.0),
        path.display()
    );
    drop(text);
    sharded_ingest_proof(&path, rows, CHUNK);

    let workers = parallel::default_workers();
    let m = matrix();
    let mut group = c.benchmark_group("streaming/shard_merge_vs_serial");
    group.throughput(Throughput::Elements(2 * u64::from(rows)));
    group.bench_function("serial", |b| {
        b.iter(|| {
            Assessment::stream(stream_csv(
                BufReader::new(File::open(&path).expect("reopen CSV")),
                CHUNK,
            ))
            .scenarios(std::hint::black_box(&m))
            .workers(workers)
            .run()
            .unwrap()
        })
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
            b.iter(|| {
                Assessment::stream(
                    ShardedCsvReader::open(&path, s, CHUNK).expect("plan byte-range shards"),
                )
                .scenarios(std::hint::black_box(&m))
                .workers(workers)
                .run()
                .unwrap()
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_streaming
}
criterion_group! {
    name = shard_benches;
    config = Criterion::default().sample_size(3);
    targets = bench_sharded
}
criterion_main!(benches, shard_benches);
