//! Streaming ingestion at fleet scale: the larger-than-memory proof and
//! its scaling knobs.
//!
//! The headline run streams a **one-million-system** synthetic fleet
//! through the incremental session under a two-scenario matrix without
//! ever materializing it — peak fleet residency is asserted to be one
//! chunk — and cross-checks the fold against the in-memory session on the
//! synthetic 500 (bit-identity). Criterion groups then sweep chunk budget
//! and worker count on a 100k-system fleet.

use bench::{banner, BENCH_SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easyc::scenario::{DataScenario, MetricBit, MetricMask, ScenarioMatrix};
use easyc::Assessment;
use top500::stream::SyntheticChunks;
use top500::synthetic::{generate_full, SyntheticConfig};

fn matrix() -> ScenarioMatrix {
    ScenarioMatrix::new()
        .with(DataScenario::full("full"))
        .with(DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ))
}

fn config(n: u32) -> SyntheticConfig {
    SyntheticConfig {
        n,
        seed: BENCH_SEED,
        ..Default::default()
    }
}

/// Streams a 1M-system fleet once and asserts the memory model: exactly
/// one chunk resident, results folded, nothing materialized.
fn million_row_proof() {
    const FLEET: u32 = 1_000_000;
    const CHUNK: usize = 8_192;
    let workers = parallel::default_workers();
    let start = std::time::Instant::now();
    let output = Assessment::stream(SyntheticChunks::new(config(FLEET), CHUNK))
        .scenarios(&matrix())
        .workers(workers)
        .run()
        .expect("synthetic source cannot fail");
    let elapsed = start.elapsed();
    assert_eq!(output.systems(), FLEET as usize);
    assert_eq!(output.chunks(), (FLEET as usize).div_ceil(CHUNK));
    assert!(
        output.peak_chunk_rows() <= CHUNK,
        "peak resident chunk {} exceeds the {CHUNK}-row budget",
        output.peak_chunk_rows()
    );
    let full = output.slice("full").expect("scenario present");
    assert_eq!(full.coverage.total, FLEET as usize);
    assert!(full.operational_total_mt > 0.0);
    println!(
        "streamed {} systems x {} scenarios in {:.1}s ({} workers): \
         {} chunks, peak residency {} rows (fleet never materialized)",
        output.systems(),
        output.len(),
        elapsed.as_secs_f64(),
        workers,
        output.chunks(),
        output.peak_chunk_rows()
    );
    println!(
        "fleet totals: {:.2} M MT operational, {:.2} M MT embodied",
        full.operational_total_mt / 1e6,
        full.embodied_total_mt / 1e6
    );

    // Bit-identity spot check against the in-memory session (synthetic
    // 500) — the same pin tests/streaming.rs enforces, kept here so a
    // release bench run self-verifies.
    let list = generate_full(&config(500));
    let session = Assessment::of(&list).scenarios(&matrix()).run();
    let streamed = Assessment::stream(SyntheticChunks::new(config(500), 64))
        .scenarios(&matrix())
        .run()
        .unwrap();
    for (s, m) in streamed.slices().iter().zip(session.slices()) {
        let op: f64 = m
            .footprints
            .iter()
            .filter_map(|f| f.operational.as_ref().ok().map(|o| o.mt_co2e))
            .fold(0.0, |acc, v| acc + v);
        assert_eq!(s.coverage, m.coverage, "streamed coverage drifted");
        assert_eq!(s.operational_total_mt, op, "streamed totals drifted");
    }
    println!("bit-identity vs in-memory session on the synthetic 500: OK");
}

fn bench_streaming(c: &mut Criterion) {
    banner(
        "Streaming ingestion",
        "larger-than-memory sweeps: chunked synthetic fleets through the incremental session",
    );
    million_row_proof();

    const BENCH_FLEET: u32 = 100_000;
    let workers = parallel::default_workers();
    let m = matrix();

    // Chunk-budget sweep: how much chunking overhead does bounded memory
    // cost at a fixed worker count?
    let mut group = c.benchmark_group("streaming/sweep_100k_by_chunk_rows");
    group.throughput(Throughput::Elements(2 * u64::from(BENCH_FLEET)));
    for chunk_rows in [1_024usize, 8_192, 65_536] {
        group.bench_with_input(
            BenchmarkId::from_parameter(chunk_rows),
            &chunk_rows,
            |b, &rows| {
                b.iter(|| {
                    Assessment::stream(SyntheticChunks::new(config(BENCH_FLEET), rows))
                        .scenarios(std::hint::black_box(&m))
                        .workers(workers)
                        .run()
                        .unwrap()
                })
            },
        );
    }
    group.finish();

    // Worker sweep at a fixed chunk budget: the per-chunk (scenario ×
    // sub-chunk) plan must keep the pool busy.
    let mut group = c.benchmark_group("streaming/sweep_100k_by_workers");
    group.throughput(Throughput::Elements(2 * u64::from(BENCH_FLEET)));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                Assessment::stream(SyntheticChunks::new(config(BENCH_FLEET), 8_192))
                    .scenarios(std::hint::black_box(&m))
                    .workers(w)
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_streaming
}
criterion_main!(benches);
