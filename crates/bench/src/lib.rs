#![warn(missing_docs)]

//! Shared setup for the figure-regeneration benches.
//!
//! Every bench target regenerates one table or figure of the paper: it
//! prints the rows/series once (so `cargo bench` output *is* the
//! reproduction) and then times the generation under Criterion.

use analysis::pipeline::{PipelineOutput, StudyPipeline};
use top500::appendix::AppendixRow;

/// The seed every bench uses, matching the examples.
pub const BENCH_SEED: u64 = 0x5EED_CAFE;

/// Appendix rows (reference data).
pub fn appendix_rows() -> Vec<AppendixRow> {
    top500::appendix::load()
}

/// A full pipeline run over the synthetic 500.
pub fn pipeline_run() -> PipelineOutput {
    StudyPipeline::new(500, BENCH_SEED).run()
}

/// Prints a banner separating the reproduction output from timing noise.
pub fn banner(figure: &str, caption: &str) {
    println!("\n=== {figure} — {caption} ===");
}
