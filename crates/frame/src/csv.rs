//! Minimal CSV reader/writer (RFC 4180 quoting, empty field = null).
//!
//! The Top 500 appendix dataset and every figure artifact round-trip through
//! this module, so it is tested for quoting, embedded separators, CRLF and
//! type inference.

use crate::column::{Column, Value};
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;

/// Splits one logical CSV record that has already been isolated (no embedded
/// newlines — those are handled by [`parse`]).
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                ',' => fields.push(std::mem::take(&mut field)),
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(FrameError::Csv {
                            line: line_no,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv {
            line: line_no,
            message: "unterminated quote".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Joins raw text lines into logical records, re-merging lines that were
/// split inside a quoted field.
fn logical_records(text: &str) -> Vec<(usize, String)> {
    let mut records = Vec::new();
    let mut pending = String::new();
    let mut pending_start = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        if pending.is_empty() {
            pending_start = i + 1;
            pending.push_str(line);
        } else {
            pending.push('\n');
            pending.push_str(line);
        }
        // A record is complete when it contains an even number of quotes.
        if pending.matches('"').count().is_multiple_of(2) {
            records.push((pending_start, std::mem::take(&mut pending)));
        }
    }
    if !pending.is_empty() {
        records.push((pending_start, pending));
    }
    records
}

/// Infers a cell value: empty → null, else i64, else f64, else bool, else str.
fn infer_value(field: &str) -> Value {
    if field.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = field.parse::<i64>() {
        return Value::I64(i);
    }
    if let Ok(f) = field.parse::<f64>() {
        return Value::F64(f);
    }
    match field {
        "true" | "TRUE" | "True" => Value::Bool(true),
        "false" | "FALSE" | "False" => Value::Bool(false),
        _ => Value::Str(field.to_string()),
    }
}

/// Column type lattice used during inference: Null < I64 < F64, anything
/// else degrades to Str; Bool only merges with Bool/Null.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Unknown,
    I64,
    F64,
    Bool,
    Str,
}

impl Kind {
    fn merge(self, v: &Value) -> Kind {
        let vk = match v {
            Value::Null => return self,
            Value::I64(_) => Kind::I64,
            Value::F64(_) => Kind::F64,
            Value::Bool(_) => Kind::Bool,
            Value::Str(_) => Kind::Str,
        };
        match (self, vk) {
            (Kind::Unknown, k) => k,
            (a, b) if a == b => a,
            (Kind::I64, Kind::F64) | (Kind::F64, Kind::I64) => Kind::F64,
            _ => Kind::Str,
        }
    }
}

/// Parses CSV text (first record = header) into a typed [`DataFrame`].
///
/// Types are inferred per column across all rows; mixed int/float widens to
/// float, any other mixture falls back to string. Empty fields become nulls.
pub fn parse(text: &str) -> Result<DataFrame> {
    let mut records = logical_records(text);
    // Trailing blank lines are newline artifacts, not records; interior
    // blank lines are one empty (null) field — meaningful for one-column
    // data, a field-count error otherwise.
    while records.last().map(|(_, r)| r.is_empty()).unwrap_or(false) {
        records.pop();
    }
    let mut iter = records.into_iter();
    let (header_line, header) = match iter.next() {
        Some(h) => h,
        None => return Ok(DataFrame::new()),
    };
    let names = split_record(&header, header_line)?;
    let mut cells: Vec<Vec<Value>> = vec![Vec::new(); names.len()];
    for (line_no, record) in iter {
        let fields = split_record(&record, line_no)?;
        if fields.len() != names.len() {
            return Err(FrameError::Csv {
                line: line_no,
                message: format!("expected {} fields, got {}", names.len(), fields.len()),
            });
        }
        for (col, field) in cells.iter_mut().zip(&fields) {
            col.push(infer_value(field));
        }
    }
    let mut df = DataFrame::new();
    for (name, values) in names.into_iter().zip(cells) {
        let kind = values.iter().fold(Kind::Unknown, Kind::merge);
        let column = match kind {
            Kind::I64 => Column::I64(
                values
                    .iter()
                    .map(|v| match v {
                        Value::I64(i) => Some(*i),
                        _ => None,
                    })
                    .collect(),
            ),
            Kind::F64 => Column::F64(
                values
                    .iter()
                    .map(|v| match v {
                        Value::F64(f) => Some(*f),
                        Value::I64(i) => Some(*i as f64),
                        _ => None,
                    })
                    .collect(),
            ),
            Kind::Bool => Column::Bool(
                values
                    .iter()
                    .map(|v| match v {
                        Value::Bool(b) => Some(*b),
                        _ => None,
                    })
                    .collect(),
            ),
            // Unknown (all nulls) defaults to string.
            Kind::Str | Kind::Unknown => Column::Str(
                values
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => Some(s.clone()),
                        Value::I64(i) => Some(i.to_string()),
                        Value::F64(f) => Some(f.to_string()),
                        Value::Bool(b) => Some(b.to_string()),
                        Value::Null => None,
                    })
                    .collect(),
            ),
        };
        df.add_column(name, column)?;
    }
    Ok(df)
}

/// Quotes a field when it contains separators, quotes or newlines.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialises a frame to CSV text (header + rows, `\n` separators, empty
/// field for nulls).
pub fn write(df: &DataFrame) -> String {
    let mut out = String::new();
    out.push_str(
        &df.names()
            .iter()
            .map(|n| escape(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in 0..df.len() {
        let mut fields = Vec::with_capacity(df.width());
        for name in df.names() {
            let v = df.value(name, row).expect("in-range row and known column");
            fields.push(escape(&v.to_string()));
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_types() {
        let df = parse("rank,name,power\n1,Frontier,22.7\n2,Aurora,\n").unwrap();
        assert_eq!(df.len(), 2);
        assert_eq!(df.column("rank").unwrap().type_name(), "i64");
        assert_eq!(df.column("power").unwrap().type_name(), "f64");
        assert_eq!(df.value("power", 1).unwrap(), Value::Null);
    }

    #[test]
    fn mixed_int_float_widens() {
        let df = parse("x\n1\n2.5\n").unwrap();
        assert_eq!(df.column("x").unwrap().type_name(), "f64");
        assert_eq!(df.numeric("x").unwrap(), vec![Some(1.0), Some(2.5)]);
    }

    #[test]
    fn mixed_number_string_degrades_to_str() {
        let df = parse("x\n1\nabc\n").unwrap();
        assert_eq!(df.column("x").unwrap().type_name(), "str");
        assert_eq!(df.value("x", 0).unwrap(), Value::Str("1".into()));
    }

    #[test]
    fn quoted_fields_with_commas() {
        let df = parse("name,v\n\"MareNostrum 5, ACC\",3\n").unwrap();
        assert_eq!(
            df.value("name", 0).unwrap(),
            Value::Str("MareNostrum 5, ACC".into())
        );
    }

    #[test]
    fn escaped_quotes() {
        let df = parse("name\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(
            df.value("name", 0).unwrap(),
            Value::Str("say \"hi\"".into())
        );
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let df = parse("name,v\n\"two\nlines\",1\n").unwrap();
        assert_eq!(df.len(), 1);
        assert_eq!(
            df.value("name", 0).unwrap(),
            Value::Str("two\nlines".into())
        );
    }

    #[test]
    fn crlf_handled() {
        let df = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(df.len(), 1);
        assert_eq!(df.value("b", 0).unwrap(), Value::I64(2));
    }

    #[test]
    fn field_count_mismatch_is_error() {
        let err = parse("a,b\n1\n").unwrap_err();
        assert!(matches!(err, FrameError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(parse("a\n\"oops\n").is_err());
    }

    #[test]
    fn roundtrip_preserves_values() {
        let text = "rank,name,power\n1,Frontier,22.7\n2,\"X, Y\",\n";
        let df = parse(text).unwrap();
        let df2 = parse(&write(&df)).unwrap();
        assert_eq!(df, df2);
    }

    #[test]
    fn empty_input_is_empty_frame() {
        let df = parse("").unwrap();
        assert_eq!(df.width(), 0);
        assert_eq!(df.len(), 0);
    }

    #[test]
    fn bool_inference() {
        let df = parse("flag\ntrue\nfalse\n\n").unwrap();
        assert_eq!(df.column("flag").unwrap().type_name(), "bool");
    }
}
