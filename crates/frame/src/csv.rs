//! Minimal CSV reader/writer (RFC 4180 quoting, empty field = null).
//!
//! The Top 500 appendix dataset and every figure artifact round-trip through
//! this module, so it is tested for quoting, embedded separators, CRLF and
//! type inference. For inputs too large to materialize, [`ChunkedReader`]
//! streams the same dialect as bounded [`DataFrame`] chunks.

use crate::column::{Column, Value};
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use std::io::BufRead;

/// Splits one logical CSV record that has already been isolated (no embedded
/// newlines — those are handled by [`parse`]).
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                ',' => fields.push(std::mem::take(&mut field)),
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(FrameError::Csv {
                            line: line_no,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv {
            line: line_no,
            message: "unterminated quote".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Joins raw text lines into logical records, re-merging lines that were
/// split inside a quoted field.
fn logical_records(text: &str) -> Vec<(usize, String)> {
    let mut records = Vec::new();
    let mut pending = String::new();
    let mut pending_start = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        if pending.is_empty() {
            pending_start = i + 1;
            pending.push_str(line);
        } else {
            pending.push('\n');
            pending.push_str(line);
        }
        // A record is complete when it contains an even number of quotes.
        if pending.matches('"').count().is_multiple_of(2) {
            records.push((pending_start, std::mem::take(&mut pending)));
        }
    }
    if !pending.is_empty() {
        records.push((pending_start, pending));
    }
    records
}

/// Infers a cell value: empty → null, else i64, else f64, else bool, else str.
fn infer_value(field: &str) -> Value {
    if field.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = field.parse::<i64>() {
        return Value::I64(i);
    }
    if let Ok(f) = field.parse::<f64>() {
        return Value::F64(f);
    }
    match field {
        "true" | "TRUE" | "True" => Value::Bool(true),
        "false" | "FALSE" | "False" => Value::Bool(false),
        _ => Value::Str(field.to_string()),
    }
}

/// Column type lattice used during inference: Null < I64 < F64, anything
/// else degrades to Str; Bool only merges with Bool/Null.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Unknown,
    I64,
    F64,
    Bool,
    Str,
}

impl Kind {
    fn merge(self, v: &Value) -> Kind {
        let vk = match v {
            Value::Null => return self,
            Value::I64(_) => Kind::I64,
            Value::F64(_) => Kind::F64,
            Value::Bool(_) => Kind::Bool,
            Value::Str(_) => Kind::Str,
        };
        match (self, vk) {
            (Kind::Unknown, k) => k,
            (a, b) if a == b => a,
            (Kind::I64, Kind::F64) | (Kind::F64, Kind::I64) => Kind::F64,
            _ => Kind::Str,
        }
    }
}

/// Builds a typed frame from header names and isolated logical records —
/// the shared back half of [`parse`] and [`ChunkedReader`], so whole-file
/// and streamed chunks go through one code path.
fn frame_from_records(names: &[String], records: &[(usize, String)]) -> Result<DataFrame> {
    let mut cells: Vec<Vec<Value>> = vec![Vec::new(); names.len()];
    for (line_no, record) in records {
        let fields = split_record(record, *line_no)?;
        if fields.len() != names.len() {
            return Err(FrameError::Csv {
                line: *line_no,
                message: format!("expected {} fields, got {}", names.len(), fields.len()),
            });
        }
        for (col, field) in cells.iter_mut().zip(&fields) {
            col.push(infer_value(field));
        }
    }
    let mut df = DataFrame::new();
    for (name, values) in names.iter().zip(cells) {
        let kind = values.iter().fold(Kind::Unknown, Kind::merge);
        let column = match kind {
            Kind::I64 => Column::I64(
                values
                    .iter()
                    .map(|v| match v {
                        Value::I64(i) => Some(*i),
                        _ => None,
                    })
                    .collect(),
            ),
            Kind::F64 => Column::F64(
                values
                    .iter()
                    .map(|v| match v {
                        Value::F64(f) => Some(*f),
                        Value::I64(i) => Some(*i as f64),
                        _ => None,
                    })
                    .collect(),
            ),
            Kind::Bool => Column::Bool(
                values
                    .iter()
                    .map(|v| match v {
                        Value::Bool(b) => Some(*b),
                        _ => None,
                    })
                    .collect(),
            ),
            // Unknown (all nulls) defaults to string.
            Kind::Str | Kind::Unknown => Column::Str(
                values
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => Some(s.clone()),
                        Value::I64(i) => Some(i.to_string()),
                        Value::F64(f) => Some(f.to_string()),
                        Value::Bool(b) => Some(b.to_string()),
                        Value::Null => None,
                    })
                    .collect(),
            ),
        };
        df.add_column(name.clone(), column)?;
    }
    Ok(df)
}

/// Parses CSV text (first record = header) into a typed [`DataFrame`].
///
/// Types are inferred per column across all rows; mixed int/float widens to
/// float, any other mixture falls back to string. Empty fields become nulls.
pub fn parse(text: &str) -> Result<DataFrame> {
    let mut records = logical_records(text);
    // Trailing blank lines are newline artifacts, not records; interior
    // blank lines are one empty (null) field — meaningful for one-column
    // data, a field-count error otherwise.
    while records.last().map(|(_, r)| r.is_empty()).unwrap_or(false) {
        records.pop();
    }
    let mut iter = records.into_iter();
    let (header_line, header) = match iter.next() {
        Some(h) => h,
        None => return Ok(DataFrame::new()),
    };
    let names = split_record(&header, header_line)?;
    let rest: Vec<(usize, String)> = iter.collect();
    frame_from_records(&names, &rest)
}

/// Streaming CSV reader that yields [`DataFrame`] chunks of at most
/// `rows_per_chunk` rows, so arbitrarily large inputs parse in bounded
/// memory (at most one chunk of records plus one partial logical record is
/// resident at any time).
///
/// The dialect is identical to [`parse`]: RFC 4180 quoting, CRLF, embedded
/// newlines (records are re-merged across raw lines until the quote count
/// is even — including across chunk boundaries), trailing blank lines
/// dropped, interior blank lines kept. The one divergence is column *type
/// inference*, which is necessarily per chunk rather than whole-file: a
/// column whose kinds mix *across* chunks comes back with different
/// chunk-local types than [`parse`] would assign globally. Concretely, one
/// non-numeric cell degrades a whole-file numeric column to string
/// (every cell then reads as a string), while chunks without the
/// offending cell still parse as numbers — consumers that must match
/// whole-file semantics on such mixed columns need to parse whole-file.
/// Columns that are kind-consistent (or only mix within one chunk) parse
/// identically.
///
/// A header-only input yields exactly one zero-row chunk (so consumers can
/// still validate the schema); an empty input yields no chunks. After the
/// first `Err`, the reader is fused and yields `None` forever.
#[derive(Debug)]
pub struct ChunkedReader<R> {
    input: R,
    rows_per_chunk: usize,
    /// Drop lines whose trimmed start is `#` (the Top 500 template's
    /// comment convention) before any quote accounting, exactly like the
    /// pre-filter the whole-file importer applies.
    strip_comments: bool,
    /// Header names, parsed from the first logical record.
    names: Option<Vec<String>>,
    /// Completed records waiting to be emitted (bounded by one chunk).
    ready: Vec<(usize, String)>,
    /// Completed *empty* records held back until we know whether they are
    /// interior (kept, like [`parse`]) or trailing (dropped).
    blanks: Vec<(usize, String)>,
    /// Partial logical record: content, 1-based start line, quote parity.
    pending: String,
    pending_start: usize,
    pending_active: bool,
    pending_quotes_even: bool,
    line_no: usize,
    emitted_any: bool,
    eof: bool,
    fused: bool,
}

impl<R: BufRead> ChunkedReader<R> {
    /// Reader over `input` yielding chunks of at most `rows_per_chunk`
    /// data rows (the header does not count; a budget of 0 is treated
    /// as 1).
    pub fn new(input: R, rows_per_chunk: usize) -> ChunkedReader<R> {
        ChunkedReader {
            input,
            rows_per_chunk: rows_per_chunk.max(1),
            strip_comments: false,
            names: None,
            ready: Vec::new(),
            blanks: Vec::new(),
            pending: String::new(),
            pending_start: 0,
            pending_active: false,
            pending_quotes_even: true,
            line_no: 0,
            emitted_any: false,
            eof: false,
            fused: false,
        }
    }

    /// Drops `#`-prefixed comment lines before parsing. Line numbers in
    /// errors then count only non-comment lines, matching a pre-filtered
    /// whole-file parse.
    pub fn strip_comments(mut self) -> ChunkedReader<R> {
        self.strip_comments = true;
        self
    }

    /// Column names of the input, available once the first chunk has been
    /// read.
    pub fn names(&self) -> Option<&[String]> {
        self.names.as_deref()
    }

    /// Completes the pending logical record and routes it to `ready` (via
    /// the blank-holding queue, so trailing blanks can still be dropped).
    fn complete_pending(&mut self) {
        let record = std::mem::take(&mut self.pending);
        let start = self.pending_start;
        self.pending_active = false;
        self.pending_quotes_even = true;
        if record.is_empty() {
            self.blanks.push((start, record));
        } else {
            self.ready.append(&mut self.blanks);
            self.ready.push((start, record));
        }
    }

    /// Reads raw lines until one chunk of records is ready or EOF.
    fn fill(&mut self) -> Result<()> {
        // +1: the first record is the header, not a data row.
        let want = self.rows_per_chunk + usize::from(self.names.is_none());
        let mut line = String::new();
        while !self.eof && self.ready.len() < want {
            line.clear();
            let read = self
                .input
                .read_line(&mut line)
                .map_err(|e| FrameError::Io(e.to_string()))?;
            if read == 0 {
                self.eof = true;
                if self.pending_active {
                    self.complete_pending();
                }
                // Blanks still held at EOF are trailing: drop them.
                self.blanks.clear();
                break;
            }
            let content = line.strip_suffix('\n').unwrap_or(&line);
            let content = content.strip_suffix('\r').unwrap_or(content);
            if self.strip_comments && content.trim_start().starts_with('#') {
                continue;
            }
            self.line_no += 1;
            if !self.pending_active {
                self.pending_active = true;
                self.pending_start = self.line_no;
            } else {
                self.pending.push('\n');
            }
            self.pending.push_str(content);
            if content.matches('"').count() % 2 == 1 {
                self.pending_quotes_even = !self.pending_quotes_even;
            }
            // A record is complete when it contains an even number of
            // quotes — the same rule the whole-file splitter uses.
            if self.pending_quotes_even {
                self.complete_pending();
            }
        }
        Ok(())
    }

    /// Reads the next chunk: `None` at end of input, `Some(Err)` on the
    /// first I/O or CSV error (after which the reader is fused).
    pub fn next_chunk(&mut self) -> Option<Result<DataFrame>> {
        if self.fused {
            return None;
        }
        let result = self.advance();
        if matches!(result, Some(Err(_)) | None) {
            self.fused = true;
        }
        result
    }

    fn advance(&mut self) -> Option<Result<DataFrame>> {
        if let Err(e) = self.fill() {
            return Some(Err(e));
        }
        if self.names.is_none() {
            let (header_line, header) = match self.ready.first() {
                Some(h) => (h.0, h.1.clone()),
                None => return None, // empty input
            };
            self.ready.remove(0);
            match split_record(&header, header_line) {
                Ok(names) => self.names = Some(names),
                Err(e) => return Some(Err(e)),
            }
        }
        if self.ready.is_empty() && self.eof {
            if self.emitted_any {
                return None;
            }
            // Header-only input: one empty chunk so the schema is visible.
            self.emitted_any = true;
            let names = self.names.clone().expect("header parsed above");
            return Some(frame_from_records(&names, &[]));
        }
        let take = self.rows_per_chunk.min(self.ready.len());
        let records: Vec<(usize, String)> = self.ready.drain(..take).collect();
        self.emitted_any = true;
        let names = self.names.clone().expect("header parsed above");
        Some(frame_from_records(&names, &records))
    }
}

impl<R: BufRead> Iterator for ChunkedReader<R> {
    type Item = Result<DataFrame>;

    fn next(&mut self) -> Option<Result<DataFrame>> {
        self.next_chunk()
    }
}

/// One byte-range shard of a CSV file, as planned by [`split_points`]:
/// replaying [`CsvSplit::header`] followed by the file bytes
/// `[start, end)` through a [`ChunkedReader`] parses exactly this shard's
/// `rows` data records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvShard {
    /// First byte of the shard's data range.
    pub start: u64,
    /// One past the last byte of the shard's data range.
    pub end: u64,
    /// Data records whose bytes fall in `[start, end)` — interior blank
    /// records count (they parse as one null row), file-trailing blanks do
    /// not (both the whole-file and the shard parse drop them).
    pub rows: usize,
}

/// A record-aligned decomposition of a CSV file into byte ranges — the
/// plan [`split_points`] produces for parallel byte-range ingest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvSplit {
    /// The raw file bytes up to and including the header record's final
    /// newline (leading comment lines included, verbatim). Chaining these
    /// bytes in front of any shard's byte range replays the exact prefix a
    /// serial reader saw, so every shard parses under the true header with
    /// no separate header-handling logic.
    pub header: Vec<u8>,
    /// The data byte ranges, ascending and exactly tiling
    /// `[header.len() as seen in the file, file_len)`. Ranges can be empty
    /// (more shards than records).
    pub shards: Vec<CsvShard>,
}

impl CsvSplit {
    /// Total data rows across all shards.
    pub fn rows(&self) -> usize {
        self.shards.iter().map(|s| s.rows).sum::<usize>()
    }
}

/// Plans a decomposition of the CSV file at `path` into `shards`
/// contiguous byte ranges whose boundaries fall only on logical-record
/// boundaries, in one streaming pass with O(shards) memory.
///
/// The scan mirrors [`ChunkedReader`]'s record accounting exactly: lines
/// join into one logical record until the quote count is even (so a split
/// target that lands inside a quoted, embedded-newline field *resyncs
/// forward* to the true end of that record), `#`-comment lines are skipped
/// before quote accounting when `strip_comments` is set (the Top 500
/// template convention — pass the same flag the reader uses), and CRLF is
/// accepted. Boundaries are placed only immediately after a completed
/// **non-empty** record, so interior blank records always travel with the
/// non-empty record that follows them (trailing blanks belong to the last
/// shard and are dropped by every parser, whole-file and sharded alike).
///
/// Split targets are the `shards − 1` equidistant byte offsets of the data
/// region; each boundary is the first eligible record end at or past its
/// target, so shard sizes stay near-equal except when single records span
/// targets. A file with fewer records than shards comes back with empty
/// trailing ranges; a file with no records at all (empty, or nothing but
/// comments/blank lines) yields `header` = the whole file and all-empty
/// ranges.
pub fn split_points(
    path: &std::path::Path,
    shards: usize,
    strip_comments: bool,
) -> Result<CsvSplit> {
    let io_err = |e: std::io::Error| FrameError::Io(e.to_string());
    let shards = shards.max(1);
    let file = std::fs::File::open(path).map_err(io_err)?;
    let file_len = file.metadata().map_err(io_err)?.len();
    let mut input = std::io::BufReader::new(file);

    let mut offset: u64 = 0;
    let mut line = String::new();
    let mut header: Vec<u8> = Vec::new();
    let mut header_end: Option<u64> = None;
    // Pending logical record, mirrored from [`ChunkedReader::fill`]: the
    // record completes when its quote count is even.
    let mut pending_active = false;
    let mut pending_even = true;
    let mut pending_len = 0usize;
    // Interior boundaries placed so far and the rows of each closed range.
    let mut boundaries: Vec<u64> = Vec::with_capacity(shards - 1);
    let mut range_rows: Vec<usize> = Vec::with_capacity(shards);
    let mut rows_current = 0usize;
    let mut held_blanks = 0usize;

    // Completes a record at byte offset `pos`. The first completed record
    // is the header; blanks are held until the next non-empty record (they
    // parse with it, or drop at EOF); non-empty records advance the row
    // count and may close ranges whose byte target has been passed.
    let complete = |pos: u64,
                    is_blank: bool,
                    header_end: &mut Option<u64>,
                    boundaries: &mut Vec<u64>,
                    range_rows: &mut Vec<usize>,
                    rows_current: &mut usize,
                    held_blanks: &mut usize| {
        let data_start = match *header_end {
            None => {
                *header_end = Some(pos);
                return;
            }
            Some(start) => start,
        };
        if is_blank {
            *held_blanks += 1;
            return;
        }
        *rows_current += *held_blanks + 1;
        *held_blanks = 0;
        let data_len = file_len - data_start;
        while boundaries.len() < shards - 1 {
            let k = (boundaries.len() + 1) as u64;
            let target = data_start + data_len * k / shards as u64;
            if pos < target {
                break;
            }
            boundaries.push(pos);
            range_rows.push(*rows_current);
            *rows_current = 0;
        }
    };

    loop {
        line.clear();
        let read = input.read_line(&mut line).map_err(io_err)?;
        if read == 0 {
            if pending_active {
                complete(
                    offset,
                    pending_len == 0,
                    &mut header_end,
                    &mut boundaries,
                    &mut range_rows,
                    &mut rows_current,
                    &mut held_blanks,
                );
            }
            break;
        }
        if header_end.is_none() {
            header.extend_from_slice(line.as_bytes());
        }
        offset += read as u64;
        let content = line.strip_suffix('\n').unwrap_or(&line);
        let content = content.strip_suffix('\r').unwrap_or(content);
        if strip_comments && content.trim_start().starts_with('#') {
            continue;
        }
        if !pending_active {
            pending_active = true;
            pending_len = 0;
        } else {
            pending_len += 1; // the joining '\n'
        }
        pending_len += content.len();
        if content.matches('"').count() % 2 == 1 {
            pending_even = !pending_even;
        }
        if pending_even {
            complete(
                offset,
                pending_len == 0,
                &mut header_end,
                &mut boundaries,
                &mut range_rows,
                &mut rows_current,
                &mut held_blanks,
            );
            pending_active = false;
        }
    }
    // Trailing blanks held at EOF drop, exactly as every parser drops them.
    let data_start = header_end.unwrap_or(file_len);
    while boundaries.len() < shards - 1 {
        boundaries.push(file_len);
        range_rows.push(rows_current);
        rows_current = 0;
    }
    range_rows.push(rows_current);
    let mut planned = Vec::with_capacity(shards);
    let mut start = data_start;
    for (i, rows) in range_rows.into_iter().enumerate() {
        let end = if i < boundaries.len() {
            boundaries[i]
        } else {
            file_len
        };
        planned.push(CsvShard { start, end, rows });
        start = end;
    }
    Ok(CsvSplit {
        header,
        shards: planned,
    })
}

/// Quotes a field when it contains separators, quotes or newlines.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialises a frame to CSV text (header + rows, `\n` separators, empty
/// field for nulls). Equivalent to [`write_header`] followed by
/// [`write_rows`] — streaming writers use the two halves directly to append
/// chunk-at-a-time rows under a single header.
pub fn write(df: &DataFrame) -> String {
    let mut out = write_header(df);
    out.push_str(&write_rows(df));
    out
}

/// Serialises just the header line (column names, `\n`-terminated) of a
/// frame. Byte-identical to the first line [`write()`] produces.
pub fn write_header(df: &DataFrame) -> String {
    let mut out = df
        .names()
        .iter()
        .map(|n| escape(n))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    out
}

/// Serialises just the data rows (no header) of a frame. Byte-identical to
/// what [`write()`] produces after its header line, so appending
/// `write_rows` output of successive chunks under one [`write_header`]
/// reproduces `write` over the concatenated frame exactly.
pub fn write_rows(df: &DataFrame) -> String {
    let mut out = String::new();
    for row in 0..df.len() {
        let mut fields = Vec::with_capacity(df.width());
        for name in df.names() {
            let v = df.value(name, row).expect("in-range row and known column");
            fields.push(escape(&v.to_string()));
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_types() {
        let df = parse("rank,name,power\n1,Frontier,22.7\n2,Aurora,\n").unwrap();
        assert_eq!(df.len(), 2);
        assert_eq!(df.column("rank").unwrap().type_name(), "i64");
        assert_eq!(df.column("power").unwrap().type_name(), "f64");
        assert_eq!(df.value("power", 1).unwrap(), Value::Null);
    }

    #[test]
    fn mixed_int_float_widens() {
        let df = parse("x\n1\n2.5\n").unwrap();
        assert_eq!(df.column("x").unwrap().type_name(), "f64");
        assert_eq!(df.numeric("x").unwrap(), vec![Some(1.0), Some(2.5)]);
    }

    #[test]
    fn mixed_number_string_degrades_to_str() {
        let df = parse("x\n1\nabc\n").unwrap();
        assert_eq!(df.column("x").unwrap().type_name(), "str");
        assert_eq!(df.value("x", 0).unwrap(), Value::Str("1".into()));
    }

    #[test]
    fn quoted_fields_with_commas() {
        let df = parse("name,v\n\"MareNostrum 5, ACC\",3\n").unwrap();
        assert_eq!(
            df.value("name", 0).unwrap(),
            Value::Str("MareNostrum 5, ACC".into())
        );
    }

    #[test]
    fn escaped_quotes() {
        let df = parse("name\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(
            df.value("name", 0).unwrap(),
            Value::Str("say \"hi\"".into())
        );
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let df = parse("name,v\n\"two\nlines\",1\n").unwrap();
        assert_eq!(df.len(), 1);
        assert_eq!(
            df.value("name", 0).unwrap(),
            Value::Str("two\nlines".into())
        );
    }

    #[test]
    fn crlf_handled() {
        let df = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(df.len(), 1);
        assert_eq!(df.value("b", 0).unwrap(), Value::I64(2));
    }

    #[test]
    fn field_count_mismatch_is_error() {
        let err = parse("a,b\n1\n").unwrap_err();
        assert!(matches!(err, FrameError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(parse("a\n\"oops\n").is_err());
    }

    #[test]
    fn roundtrip_preserves_values() {
        let text = "rank,name,power\n1,Frontier,22.7\n2,\"X, Y\",\n";
        let df = parse(text).unwrap();
        let df2 = parse(&write(&df)).unwrap();
        assert_eq!(df, df2);
    }

    #[test]
    fn empty_input_is_empty_frame() {
        let df = parse("").unwrap();
        assert_eq!(df.width(), 0);
        assert_eq!(df.len(), 0);
    }

    #[test]
    fn bool_inference() {
        let df = parse("flag\ntrue\nfalse\n\n").unwrap();
        assert_eq!(df.column("flag").unwrap().type_name(), "bool");
    }

    // ----------------------------------------------------- chunked reader

    /// Reads `text` in chunks of `rows` and returns every chunk.
    fn chunks_of(text: &str, rows: usize) -> Vec<DataFrame> {
        ChunkedReader::new(text.as_bytes(), rows)
            .map(|c| c.expect("chunk parses"))
            .collect()
    }

    /// Concatenated row count across chunks.
    fn total_rows(chunks: &[DataFrame]) -> usize {
        chunks.iter().map(DataFrame::len).sum()
    }

    #[test]
    fn chunked_reader_matches_parse_row_for_row() {
        let text = "rank,name,power\n1,Frontier,22.7\n2,Aurora,\n3,Eagle,12.5\n4,Fugaku,29.9\n";
        let whole = parse(text).unwrap();
        for rows in [1usize, 2, 3, 10] {
            let chunks = chunks_of(text, rows);
            assert_eq!(total_rows(&chunks), whole.len(), "rows {rows}");
            let mut row = 0;
            for chunk in &chunks {
                assert!(chunk.len() <= rows, "chunk over budget at rows {rows}");
                for local in 0..chunk.len() {
                    for name in whole.names() {
                        assert_eq!(
                            chunk.value(name, local).unwrap(),
                            whole.value(name, row).unwrap(),
                            "row {row} column {name} at rows {rows}"
                        );
                    }
                    row += 1;
                }
            }
        }
    }

    #[test]
    fn chunked_reader_quoted_newline_spanning_chunk_boundary() {
        // The quoted field's embedded newline lands exactly on a 1-row
        // chunk boundary; the record must be re-merged, not split.
        let text = "name,v\nplain,1\n\"two\nlines\",2\nlast,3\n";
        let chunks = chunks_of(text, 1);
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            chunks[1].value("name", 0).unwrap(),
            Value::Str("two\nlines".into())
        );
        assert_eq!(chunks[1].value("v", 0).unwrap(), Value::I64(2));
        assert_eq!(
            chunks[2].value("name", 0).unwrap(),
            Value::Str("last".into())
        );
    }

    #[test]
    fn chunked_reader_header_only_yields_one_empty_chunk() {
        let chunks = chunks_of("a,b\n", 4);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 0);
        assert_eq!(chunks[0].names(), &["a", "b"]);
    }

    #[test]
    fn chunked_reader_empty_input_yields_nothing() {
        assert!(chunks_of("", 4).is_empty());
    }

    #[test]
    fn chunked_reader_drops_trailing_blank_lines_only() {
        // Interior blank = one empty field (kept); trailing blanks dropped —
        // identical to `parse`.
        let text = "x\n1\n\n2\n\n\n";
        let whole = parse(text).unwrap();
        let chunks = chunks_of(text, 2);
        assert_eq!(total_rows(&chunks), whole.len());
        assert_eq!(whole.len(), 3);
        assert_eq!(chunks[0].value("x", 1).unwrap(), Value::Null);
    }

    #[test]
    fn chunked_reader_crlf_and_no_final_newline() {
        let chunks = chunks_of("a,b\r\n1,2\r\n3,4", 10);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[0].value("b", 1).unwrap(), Value::I64(4));
    }

    #[test]
    fn chunked_reader_errors_fuse() {
        let mut reader = ChunkedReader::new("a,b\n1,2\n1\n9,9\n".as_bytes(), 1);
        assert!(reader.next_chunk().unwrap().is_ok());
        let err = reader.next_chunk().unwrap().unwrap_err();
        assert!(matches!(err, FrameError::Csv { line: 3, .. }), "{err:?}");
        assert!(reader.next_chunk().is_none(), "reader must fuse after Err");
    }

    #[test]
    fn chunked_reader_unterminated_quote_at_eof_is_error() {
        let mut reader = ChunkedReader::new("a\n\"oops\n".as_bytes(), 8);
        assert!(reader.next_chunk().unwrap().is_err());
        assert!(reader.next_chunk().is_none());
    }

    #[test]
    fn chunked_reader_strip_comments_matches_prefiltered_parse() {
        let raw = "# template header\nrank,name\n# interior note\n1,alpha\n2,beta\n";
        let filtered: String = raw
            .lines()
            .filter(|l| !l.trim_start().starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        let whole = parse(&filtered).unwrap();
        let chunks: Vec<DataFrame> = ChunkedReader::new(raw.as_bytes(), 1)
            .strip_comments()
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(total_rows(&chunks), whole.len());
        assert_eq!(
            chunks[0].value("name", 0).unwrap(),
            Value::Str("alpha".into())
        );
    }

    #[test]
    fn chunked_reader_reports_names() {
        let mut reader = ChunkedReader::new("a,b\n1,2\n".as_bytes(), 1);
        assert!(reader.names().is_none());
        let first = reader.next_chunk().unwrap().unwrap();
        assert_eq!(first.names(), &["a", "b"]);
        assert_eq!(reader.names().unwrap(), &["a", "b"]);
    }

    // ----------------------------------------------------- byte-range splits

    /// Writes `content` to a fresh temp file and returns its path.
    fn temp_csv(content: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "frame-split-{}-{}.csv",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, content).expect("write temp csv");
        path
    }

    /// Every row of every chunk as (column-ordered) values.
    fn flatten(frames: &[DataFrame]) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for df in frames {
            for r in 0..df.len() {
                rows.push(
                    df.names()
                        .iter()
                        .map(|n| df.value(n, r).expect("in-range"))
                        .collect(),
                );
            }
        }
        rows
    }

    /// Splits `text` at each shard count and asserts the byte ranges tile
    /// the data region, resync to record boundaries, carry exact row
    /// counts, and reassemble to the serial parse row for row.
    fn assert_split_equivalent(text: &str, strip: bool, shard_counts: &[usize]) {
        let path = temp_csv(text);
        let bytes = std::fs::read(&path).expect("read back");
        let serial: Vec<DataFrame> = {
            let reader = ChunkedReader::new(&bytes[..], 3);
            let reader = if strip {
                reader.strip_comments()
            } else {
                reader
            };
            reader.map(|c| c.expect("serial chunk parses")).collect()
        };
        let reference = flatten(&serial);
        for &count in shard_counts {
            let split = split_points(&path, count, strip).expect("split plans");
            assert_eq!(split.shards.len(), count, "shards {count}");
            let mut cursor = split.header.len() as u64;
            for shard in &split.shards {
                assert_eq!(shard.start, cursor, "shards {count}: ranges must tile");
                assert!(shard.end >= shard.start, "shards {count}");
                cursor = shard.end;
            }
            assert_eq!(cursor, bytes.len() as u64, "shards {count}: must reach EOF");
            assert_eq!(split.rows(), reference.len(), "shards {count}");
            let mut all: Vec<DataFrame> = Vec::new();
            for shard in &split.shards {
                let mut replay = split.header.clone();
                replay.extend_from_slice(&bytes[shard.start as usize..shard.end as usize]);
                let reader = ChunkedReader::new(&replay[..], 3);
                let reader = if strip {
                    reader.strip_comments()
                } else {
                    reader
                };
                let frames: Vec<DataFrame> = reader.map(|c| c.expect("shard parses")).collect();
                let got: usize = frames.iter().map(DataFrame::len).sum();
                assert_eq!(got, shard.rows, "shards {count}: planned row count");
                all.extend(frames);
            }
            assert_eq!(flatten(&all), reference, "shards {count}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn split_points_reassembles_row_for_row() {
        let text = "# leading note\nrank,name,power\n# interior\n1,Frontier,22.7\n\
                    2,\"two\nlines\",3.5\n3,\"with, comma\",4.5\n4,plain,\n5,last,9.25\n\n";
        assert_split_equivalent(text, true, &[1, 2, 3, 4, 5, 8]);
    }

    #[test]
    fn split_points_without_comment_stripping() {
        assert_split_equivalent("a,b\n1,2\n3,4\n5,6\n7,8\n", false, &[1, 2, 3, 4, 9]);
    }

    #[test]
    fn split_points_resyncs_across_quoted_newlines() {
        // One quoted field with an embedded newline spans the byte
        // midpoint: the 2-shard boundary must skip forward to the record's
        // true end instead of cutting the field.
        let filler = "x".repeat(40);
        let text = format!("name,v\nshort,1\n\"{filler}\n{filler}\",2\ntail,3\n");
        let path = temp_csv(&text);
        let split = split_points(&path, 2, false).expect("split plans");
        let boundary = split.shards[0].end as usize;
        assert_eq!(text.as_bytes()[boundary - 1], b'\n');
        assert_eq!(split.shards[0].rows, 2, "quoted record stays whole");
        assert_eq!(split.shards[1].rows, 1);
        let _ = std::fs::remove_file(&path);
        assert_split_equivalent(&text, false, &[2, 3]);
    }

    #[test]
    fn split_points_header_only_and_empty_inputs() {
        let path = temp_csv("a,b\n");
        let split = split_points(&path, 3, false).expect("split plans");
        assert_eq!(split.header, b"a,b\n");
        assert_eq!(split.shards.len(), 3);
        assert!(split
            .shards
            .iter()
            .all(|s| s.start == 4 && s.end == 4 && s.rows == 0));
        let _ = std::fs::remove_file(&path);

        let path = temp_csv("");
        let split = split_points(&path, 2, false).expect("split plans");
        assert!(split.header.is_empty());
        assert_eq!(split.rows(), 0);
        assert!(split.shards.iter().all(|s| s.start == 0 && s.end == 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn split_points_more_shards_than_rows() {
        assert_split_equivalent("x\n1\n2\n", false, &[5]);
    }

    #[test]
    fn split_points_keeps_interior_blanks_drops_trailing() {
        // The interior blank parses as one null row and must travel with
        // the record after it; the trailing blanks vanish for every parser.
        assert_split_equivalent("x\n1\n\n2\n\n\n", false, &[1, 2, 3]);
    }

    #[test]
    fn split_points_crlf_and_no_final_newline() {
        assert_split_equivalent("a,b\r\n1,2\r\n3,4\r\n5,6", false, &[2, 3]);
    }

    #[test]
    fn header_plus_chunked_rows_byte_identical_to_whole_write() {
        // The streaming-artifact contract: write_header + per-chunk
        // write_rows must concatenate to exactly what `write` produces
        // over the whole frame, quoting included.
        let df = DataFrame::new()
            .with_column(
                "name",
                Column::from_str_iter(vec![
                    "plain".to_string(),
                    "with, comma".to_string(),
                    "with \"quote\"".to_string(),
                    "multi\nline".to_string(),
                ]),
            )
            .unwrap()
            .with_column(
                "x",
                Column::F64(vec![Some(1.5), None, Some(-3.0), Some(0.25)]),
            )
            .unwrap();
        let whole = write(&df);
        let mut pieced = write_header(&df);
        for row in 0..df.len() {
            let chunk = df.take(&[row]).unwrap();
            pieced.push_str(&write_rows(&chunk));
        }
        assert_eq!(pieced, whole);
    }
}
