//! Group-by aggregation over [`DataFrame`]s.

use crate::column::Column;
use crate::error::Result;
use crate::frame::DataFrame;
use crate::stats;

/// Aggregation functions applicable to a numeric column within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Sum of present values (0 for an empty group).
    Sum,
    /// Mean of present values (null for an empty group).
    Mean,
    /// Count of present (non-null) values.
    Count,
    /// Minimum of present values (null for empty).
    Min,
    /// Maximum of present values (null for empty).
    Max,
    /// Median of present values (null for empty).
    Median,
}

impl AggFn {
    /// Display name used for the output column suffix.
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Sum => "sum",
            AggFn::Mean => "mean",
            AggFn::Count => "count",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Median => "median",
        }
    }

    fn apply(self, values: &[f64]) -> Option<f64> {
        match self {
            AggFn::Sum => Some(stats::sum(values)),
            AggFn::Mean => stats::mean(values),
            AggFn::Count => Some(values.len() as f64),
            AggFn::Min => values.iter().copied().reduce(f64::min),
            AggFn::Max => values.iter().copied().reduce(f64::max),
            AggFn::Median => stats::median(values),
        }
    }
}

/// Groups `df` by the string column `key` and applies each `(column, fn)`
/// pair within each group. The output has one row per group, a `key` string
/// column (null key preserved) and one `column_fn` column per aggregation.
pub fn group_by(df: &DataFrame, key: &str, aggs: &[(&str, AggFn)]) -> Result<DataFrame> {
    let groups = df.group_indices_by_str(key)?;
    let mut keys: Vec<Option<String>> = Vec::with_capacity(groups.len());
    let mut outputs: Vec<Vec<Option<f64>>> = vec![Vec::with_capacity(groups.len()); aggs.len()];

    // Pre-fetch numeric views once per aggregated column.
    let mut numeric_cache: Vec<Vec<Option<f64>>> = Vec::with_capacity(aggs.len());
    for (col, _) in aggs {
        numeric_cache.push(df.numeric(col)?);
    }

    for (k, rows) in groups {
        keys.push(k);
        for (slot, ((_, agg), values)) in aggs.iter().zip(&numeric_cache).enumerate() {
            let present: Vec<f64> = rows.iter().filter_map(|&i| values[i]).collect();
            outputs[slot].push(agg.apply(&present));
        }
    }

    let mut out = DataFrame::new().with_column(key, Column::Str(keys))?;
    for ((col, agg), values) in aggs.iter().zip(outputs) {
        out.add_column(format!("{col}_{}", agg.name()), Column::F64(values))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Value;

    fn df() -> DataFrame {
        DataFrame::new()
            .with_column(
                "country",
                Column::from_str_iter(["US", "FR", "US", "FR", "JP"]),
            )
            .unwrap()
            .with_column(
                "carbon",
                Column::F64(vec![Some(10.0), Some(4.0), Some(20.0), None, Some(7.0)]),
            )
            .unwrap()
    }

    #[test]
    fn group_sum_and_count() {
        let g = group_by(
            &df(),
            "country",
            &[("carbon", AggFn::Sum), ("carbon", AggFn::Count)],
        )
        .unwrap();
        assert_eq!(g.len(), 3);
        // US first (first appearance order).
        assert_eq!(g.value("country", 0).unwrap(), Value::Str("US".into()));
        assert_eq!(g.value("carbon_sum", 0).unwrap(), Value::F64(30.0));
        // FR: one null dropped.
        assert_eq!(g.value("carbon_count", 1).unwrap(), Value::F64(1.0));
    }

    #[test]
    fn group_mean_of_empty_group_is_null() {
        let base = DataFrame::new()
            .with_column("k", Column::from_str_iter(["a"]))
            .unwrap()
            .with_column("v", Column::F64(vec![None]))
            .unwrap();
        let g = group_by(&base, "k", &[("v", AggFn::Mean)]).unwrap();
        assert_eq!(g.value("v_mean", 0).unwrap(), Value::Null);
    }

    #[test]
    fn min_max_median() {
        let g = group_by(
            &df(),
            "country",
            &[
                ("carbon", AggFn::Min),
                ("carbon", AggFn::Max),
                ("carbon", AggFn::Median),
            ],
        )
        .unwrap();
        assert_eq!(g.value("carbon_min", 0).unwrap(), Value::F64(10.0));
        assert_eq!(g.value("carbon_max", 0).unwrap(), Value::F64(20.0));
        assert_eq!(g.value("carbon_median", 0).unwrap(), Value::F64(15.0));
    }

    #[test]
    fn unknown_agg_column_errors() {
        assert!(group_by(&df(), "country", &[("nope", AggFn::Sum)]).is_err());
    }
}
