#![warn(missing_docs)]

//! `frame` — a small, typed, columnar data library.
//!
//! The EasyC study is fundamentally a dataframe/statistics workload: a list of
//! 500 systems with many optional attributes, filtered, grouped, aggregated and
//! interpolated. Rust has no pandas, so this crate supplies the minimal
//! substrate the study needs:
//!
//! - [`Column`]: a nullable, typed column (`f64` / `i64` / `String` / `bool`).
//! - [`DataFrame`]: an ordered collection of equal-length named columns with
//!   selection, filtering, sorting and group-by.
//! - [`csv`]: dependency-free CSV reader/writer with quoting and null handling.
//! - [`stats`]: descriptive statistics with explicit missing-value semantics,
//!   linear regression, histograms and bootstrap resampling.
//! - [`bitset`]: fixed-length `u64`-word bitsets, the presence-mask substrate
//!   of the columnar assessment kernels.
//!
//! Everything is deterministic and allocates predictably; hot paths take
//! slices, not owned vectors (see the workspace performance guide).

pub mod agg;
pub mod bitset;
pub mod column;
pub mod csv;
pub mod error;
pub mod frame;
pub mod series;
pub mod stats;

pub use bitset::Bitset;
pub use column::{Column, Value};
pub use error::{FrameError, Result};
pub use frame::DataFrame;
pub use series::Series;
