//! Fixed-length bitsets for columnar presence masks.
//!
//! The columnar assessment kernels (`easyc::columns`) store one presence bit
//! per (system, metric) instead of per-row `Option`s, so applying a scenario
//! `MetricMask` is a word-wide AND against a broadcast bit rather than a
//! per-row branch. The bitset is deliberately minimal: fixed length at
//! construction, 64-bit words exposed directly so kernels can classify 64
//! rows per word operation.

/// A fixed-length bitset backed by `u64` words (LSB-first within a word).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// All-zero bitset of `len` bits.
    pub fn new(len: usize) -> Bitset {
        Bitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to `value`. Panics when `i` is out of range.
    pub fn assign(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Sets bit `i`. Panics when `i` is out of range.
    pub fn set(&mut self, i: usize) {
        self.assign(i, true);
    }

    /// Reads bit `i`. Panics when `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// The backing words, LSB-first; bits past `len` in the last word are 0.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word `w` (bits `64 * w ..`), or 0 past the end — callers iterating a
    /// sub-range in word blocks don't need a bounds branch for the tail.
    pub fn word(&self, w: usize) -> u64 {
        self.words.get(w).copied().unwrap_or(0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Word `w` when `visible` is true, 0 otherwise — the branchless
    /// "presence AND scenario-mask bit" combination used by the kernels.
    pub fn masked_word(&self, w: usize, visible: bool) -> u64 {
        // `visible` is scenario-constant; `as u64` turns it into a broadcast
        // multiplier instead of a per-word branch.
        self.word(w) * visible as u64
    }
}

/// Iterates the indices of set bits in `word`, offset by `base`.
pub fn for_each_set_bit(mut word: u64, base: usize, mut f: impl FnMut(usize)) {
    while word != 0 {
        let bit = word.trailing_zeros() as usize;
        f(base + bit);
        word &= word - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitset::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        for i in 0..130 {
            assert_eq!(b.get(i), matches!(i, 0 | 63 | 64 | 129), "bit {i}");
        }
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn assign_clears() {
        let mut b = Bitset::new(10);
        b.set(3);
        b.assign(3, false);
        assert!(!b.get(3));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn words_and_tail() {
        let mut b = Bitset::new(70);
        b.set(65);
        assert_eq!(b.words().len(), 2);
        assert_eq!(b.word(1), 0b10);
        assert_eq!(b.word(5), 0, "past-the-end words read as zero");
    }

    #[test]
    fn masked_word_is_presence_and_mask() {
        let mut b = Bitset::new(64);
        b.set(7);
        assert_eq!(b.masked_word(0, true), 1 << 7);
        assert_eq!(b.masked_word(0, false), 0);
    }

    #[test]
    fn for_each_set_bit_visits_in_order() {
        let mut seen = Vec::new();
        for_each_set_bit(0b1010_0001, 100, |i| seen.push(i));
        assert_eq!(seen, vec![100, 105, 107]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Bitset::new(8).get(8);
    }

    #[test]
    fn empty_bitset() {
        let b = Bitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.words().len(), 0);
        assert_eq!(b.word(0), 0);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.masked_word(0, true), 0);
        let mut visited = Vec::new();
        for_each_set_bit(b.word(0), 0, |i| visited.push(i));
        assert!(visited.is_empty(), "empty set visits nothing");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_past_len_panics() {
        Bitset::new(70).set(70);
    }

    #[test]
    fn trailing_partial_word_stays_masked() {
        // 70 bits = one full word + a 6-bit tail; the invariant `words()`
        // documents is that bits past `len` in the last word are 0.
        let mut b = Bitset::new(70);
        for i in 0..70 {
            b.set(i);
        }
        assert_eq!(b.words()[0], u64::MAX);
        assert_eq!(b.words()[1], (1 << 6) - 1, "tail bits beyond len stay 0");
        assert_eq!(b.count_ones(), 70);
        // Clearing and re-setting at the word boundary and at the last
        // valid index never disturbs the tail.
        for i in [0usize, 63, 64, 69] {
            b.assign(i, false);
            b.assign(i, true);
        }
        assert_eq!(b.words()[1] >> 6, 0);
        assert_eq!(b.count_ones(), 70);
        // A 64-aligned length has no tail word at all.
        let mut full = Bitset::new(128);
        full.set(127);
        assert_eq!(full.words().len(), 2);
        assert_eq!(full.word(2), 0);
    }

    #[test]
    fn word_iteration_covers_exactly_the_set_bits_in_order() {
        let mut b = Bitset::new(130);
        let set = [0usize, 1, 62, 63, 64, 100, 128, 129];
        for &i in &set {
            b.set(i);
        }
        let mut visited = Vec::new();
        for w in 0..b.words().len() {
            for_each_set_bit(b.word(w), w * 64, |i| visited.push(i));
        }
        assert_eq!(visited, set);
    }
}
