//! Descriptive statistics with explicit empty-input semantics.
//!
//! Conventions: functions that can be meaningless on empty input return
//! `Option`; `sum` returns 0.0 on empty input (the additive identity).
//! All functions take slices of already-present (non-null) values — null
//! handling happens at the [`Series`](crate::Series) layer.

/// Kahan-compensated sum. For 500-element carbon totals plain summation is
/// already fine, but the benches sweep to millions of synthetic rows where
/// compensation keeps totals stable across chunkings (important because the
/// parallel reduction reassociates).
pub fn sum(values: &[f64]) -> f64 {
    let mut s = 0.0f64;
    let mut c = 0.0f64;
    for &v in values {
        let y = v - c;
        let t = s + y;
        c = (t - s) - y;
        s = t;
    }
    s
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(sum(values) / values.len() as f64)
    }
}

/// Population variance; `None` on empty input.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Some(ss / values.len() as f64)
}

/// Population standard deviation; `None` on empty input.
pub fn stddev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Sample standard deviation (n-1); `None` for fewer than two values.
pub fn stddev_sample(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Some((ss / (values.len() - 1) as f64).sqrt())
}

/// Linear-interpolated quantile (the "type 7" estimator used by numpy's
/// default). `q` is clamped to `[0, 1]`. `None` on empty input.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_of_sorted(&sorted, q)
}

/// [`quantile`] over an **already-sorted** (ascending) slice — the shared
/// interpolation kernel, exposed so callers needing several quantiles of
/// one vector (e.g. both interval tails) can sort once instead of paying
/// a clone-and-sort per call.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Result of an ordinary least-squares fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1.0 for a perfect fit, 0.0 when the fit
    /// explains nothing; can be negative for a worse-than-mean model on
    /// degenerate input).
    pub r2: f64,
}

/// Ordinary least squares over paired samples. `None` when fewer than two
/// points or when `x` is constant.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = sum(x) / n;
    let my = sum(y) / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
        syy += (yi - my) * (yi - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        1.0 - (syy - slope * sxy) / syy
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

/// Fits exponential growth `y = a * g^x` by OLS on `ln y`; returns
/// `(a, g)`. Requires all `y > 0`. Used by the projection pipeline to check
/// the paper's 10.3 %/yr operational growth is self-consistent.
pub fn exponential_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    if y.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let ln_y: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    let fit = linear_fit(x, &ln_y)?;
    Some((fit.intercept.exp(), fit.slope.exp()))
}

/// A fixed-width histogram over `[min, max)` with an implicit clamp of
/// out-of-range values into the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub min: f64,
    /// Exclusive upper edge of the last bin.
    pub max: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins. Empty input produces
    /// all-zero counts; `bins` must be > 0 and `max > min`.
    pub fn build(values: &[f64], min: f64, max: f64, bins: usize) -> Option<Histogram> {
        if bins == 0 || max <= min || !max.is_finite() || !min.is_finite() {
            return None;
        }
        let mut counts = vec![0u64; bins];
        let width = (max - min) / bins as f64;
        for &v in values {
            let idx = ((v - min) / width).floor();
            let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
            counts[idx] += 1;
        }
        Some(Histogram { min, max, counts })
    }

    /// Total count across bins.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Deterministic bootstrap mean confidence interval using a caller-supplied
/// index sampler (the `parallel` crate provides the RNG streams). Returns
/// `(lo, hi)` at the given two-sided confidence `level` (e.g. 0.95).
pub fn bootstrap_mean_ci(
    values: &[f64],
    resamples: usize,
    level: f64,
    mut sample_index: impl FnMut(usize) -> usize,
) -> Option<(f64, f64)> {
    if values.is_empty() || resamples == 0 {
        return None;
    }
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut s = 0.0;
        for _ in 0..values.len() {
            s += values[sample_index(values.len())];
        }
        means.push(s / values.len() as f64);
    }
    let alpha = (1.0 - level.clamp(0.0, 1.0)) / 2.0;
    // One sort serves both tails — a per-tail `quantile` call would
    // clone-and-sort the resample vector twice.
    means.sort_by(|a, b| a.partial_cmp(b).expect("NaN in bootstrap means"));
    Some((
        quantile_of_sorted(&means, alpha)?,
        quantile_of_sorted(&means, 1.0 - alpha)?,
    ))
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum distance between
/// the empirical CDFs. `None` when either sample is empty. Used to compare
/// the *shape* of the synthetic fleet's carbon distribution against the
/// paper's appendix distribution.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d_max = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d_max = d_max.max((fa - fb).abs());
    }
    Some(d_max)
}

/// Gini coefficient of a non-negative sample — concentration of the fleet's
/// carbon across systems (0 = perfectly even, →1 = one system carries all).
pub fn gini(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v < 0.0) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in gini input"));
    let n = sorted.len() as f64;
    let total = sum(&sorted);
    if total == 0.0 {
        return Some(0.0);
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (2.0 * (i as f64 + 1.0) - n - 1.0) * v)
        .sum();
    Some(weighted / (n * total))
}

/// Pearson correlation coefficient; `None` when undefined.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_empty_is_zero() {
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn kahan_sum_is_stable() {
        // 1e16 + many tiny values: naive summation loses them entirely.
        let mut v = vec![1e16];
        v.extend(std::iter::repeat_n(1.0, 1000));
        assert_eq!(sum(&v), 1e16 + 1000.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), Some(0.0));
    }

    #[test]
    fn stddev_known_value() {
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_stddev_needs_two() {
        assert_eq!(stddev_sample(&[1.0]), None);
        assert!(stddev_sample(&[1.0, 3.0]).unwrap() > 0.0);
    }

    #[test]
    fn quantile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(3.0));
        assert_eq!(quantile(&v, 0.5), Some(2.0));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.25), Some(2.5));
    }

    #[test]
    fn quantile_clamps_q() {
        let v = [1.0, 2.0];
        assert_eq!(quantile(&v, -3.0), Some(1.0));
        assert_eq!(quantile(&v, 7.0), Some(2.0));
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_constant_x_is_none() {
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn exponential_fit_recovers_growth() {
        // y = 100 * 1.103^x — the paper's operational growth rate.
        let x: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&t| 100.0 * 1.103f64.powf(t)).collect();
        let (a, g) = exponential_fit(&x, &y).unwrap();
        assert!((a - 100.0).abs() < 1e-6);
        assert!((g - 1.103).abs() < 1e-9);
    }

    #[test]
    fn exponential_fit_rejects_nonpositive() {
        assert!(exponential_fit(&[0.0, 1.0], &[1.0, 0.0]).is_none());
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = Histogram::build(&[0.5, 1.5, 2.5, -10.0, 99.0], 0.0, 3.0, 3).unwrap();
        assert_eq!(h.counts, vec![2, 1, 2]); // -10 clamps into bin 0, 99 into bin 2
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_invalid_args() {
        assert!(Histogram::build(&[1.0], 0.0, 1.0, 0).is_none());
        assert!(Histogram::build(&[1.0], 1.0, 1.0, 4).is_none());
    }

    #[test]
    fn bootstrap_identity_sampler_degenerates_to_mean() {
        // Sampler that always returns index 0: every resample mean = values[0].
        let v = [4.0, 8.0, 12.0];
        let (lo, hi) = bootstrap_mean_ci(&v, 10, 0.95, |_| 0).unwrap();
        assert_eq!((lo, hi), (4.0, 4.0));
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&v, &v), Some(0.0));
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        assert_eq!(ks_statistic(&a, &b), Some(1.0));
    }

    #[test]
    fn ks_partial_overlap_in_between() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [3.0, 4.0, 5.0, 6.0];
        let d = ks_statistic(&a, &b).unwrap();
        assert!(d > 0.0 && d < 1.0, "{d}");
    }

    #[test]
    fn ks_empty_is_none() {
        assert_eq!(ks_statistic(&[], &[1.0]), None);
    }

    #[test]
    fn gini_uniform_is_zero() {
        let g = gini(&[5.0, 5.0, 5.0, 5.0]).unwrap();
        assert!(g.abs() < 1e-12);
    }

    #[test]
    fn gini_concentrated_near_one() {
        let mut v = vec![0.0; 99];
        v.push(100.0);
        let g = gini(&v).unwrap();
        assert!(g > 0.95, "{g}");
    }

    #[test]
    fn gini_rejects_negatives() {
        assert_eq!(gini(&[1.0, -1.0]), None);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_for_constant() {
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }
}
