//! A named column with statistics helpers — the 1-D counterpart of
//! [`DataFrame`](crate::DataFrame).

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::stats;

/// A named, nullable 1-D array. `Series` is the unit the statistics layer
/// operates on: it normalises integer columns to `f64` views and carries its
/// name into error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    column: Column,
}

impl Series {
    /// Wraps a column under a name.
    pub fn new(name: impl Into<String>, column: Column) -> Series {
        Series {
            name: name.into(),
            column,
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying column.
    pub fn column(&self) -> &Column {
        &self.column
    }

    /// Row count including nulls.
    pub fn len(&self) -> usize {
        self.column.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// Non-null count.
    pub fn count_present(&self) -> usize {
        self.column.count_present()
    }

    /// Numeric values with nulls dropped. Errors for non-numeric series.
    pub(crate) fn numeric_present(&self) -> Result<Vec<f64>> {
        Ok(self
            .column
            .numeric(&self.name)?
            .into_iter()
            .flatten()
            .collect())
    }

    /// Sum over present values (0.0 for an all-null series).
    pub fn sum(&self) -> Result<f64> {
        Ok(stats::sum(&self.numeric_present()?))
    }

    /// Mean over present values; errors when no values are present.
    pub fn mean(&self) -> Result<f64> {
        let v = self.numeric_present()?;
        stats::mean(&v).ok_or(FrameError::Empty("mean"))
    }

    /// Median over present values; errors when no values are present.
    pub fn median(&self) -> Result<f64> {
        let v = self.numeric_present()?;
        stats::quantile(&v, 0.5).ok_or(FrameError::Empty("median"))
    }

    /// Minimum over present values.
    pub fn min(&self) -> Result<f64> {
        let v = self.numeric_present()?;
        v.iter()
            .copied()
            .reduce(f64::min)
            .ok_or(FrameError::Empty("min"))
    }

    /// Maximum over present values.
    pub fn max(&self) -> Result<f64> {
        let v = self.numeric_present()?;
        v.iter()
            .copied()
            .reduce(f64::max)
            .ok_or(FrameError::Empty("max"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::new(
            "x",
            Column::F64(vec![Some(1.0), None, Some(3.0), Some(2.0)]),
        )
    }

    #[test]
    fn sum_skips_nulls() {
        assert_eq!(series().sum().unwrap(), 6.0);
    }

    #[test]
    fn mean_skips_nulls() {
        assert_eq!(series().mean().unwrap(), 2.0);
    }

    #[test]
    fn median_of_three() {
        assert_eq!(series().median().unwrap(), 2.0);
    }

    #[test]
    fn min_max() {
        assert_eq!(series().min().unwrap(), 1.0);
        assert_eq!(series().max().unwrap(), 3.0);
    }

    #[test]
    fn empty_mean_errors() {
        let s = Series::new("e", Column::F64(vec![None, None]));
        assert!(matches!(s.mean(), Err(FrameError::Empty(_))));
        assert_eq!(s.sum().unwrap(), 0.0);
    }

    #[test]
    fn string_series_is_not_numeric() {
        let s = Series::new("s", Column::from_str_iter(["a", "b"]));
        assert!(s.mean().is_err());
    }
}
