//! Nullable typed columns.

use crate::error::{FrameError, Result};
use std::fmt;

/// A single cell value, used at row-level APIs and CSV boundaries.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value (CSV empty field).
    Null,
    /// 64-bit float.
    F64(f64),
    /// 64-bit signed integer.
    I64(i64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns true when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Best-effort numeric view (integers widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String view for `Str` values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::F64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A nullable, homogeneous column of values.
///
/// Nulls are represented in-band as `Option<T>` so that missing-data
/// semantics (the heart of the coverage study) are explicit at the type level.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Nullable floats.
    F64(Vec<Option<f64>>),
    /// Nullable integers.
    I64(Vec<Option<i64>>),
    /// Nullable strings.
    Str(Vec<Option<String>>),
    /// Nullable booleans.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// Number of rows (including nulls).
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Static name of the column's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Column::F64(_) => "f64",
            Column::I64(_) => "i64",
            Column::Str(_) => "str",
            Column::Bool(_) => "bool",
        }
    }

    /// Number of non-null entries.
    pub fn count_present(&self) -> usize {
        match self {
            Column::F64(v) => v.iter().filter(|x| x.is_some()).count(),
            Column::I64(v) => v.iter().filter(|x| x.is_some()).count(),
            Column::Str(v) => v.iter().filter(|x| x.is_some()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_some()).count(),
        }
    }

    /// Number of null entries.
    pub fn count_null(&self) -> usize {
        self.len() - self.count_present()
    }

    /// True when the entry at `row` is null. Out-of-range rows are an error
    /// at the [`DataFrame`](crate::DataFrame) layer; here we panic like slice
    /// indexing, which keeps hot loops branch-light.
    pub fn is_null_at(&self, row: usize) -> bool {
        match self {
            Column::F64(v) => v[row].is_none(),
            Column::I64(v) => v[row].is_none(),
            Column::Str(v) => v[row].is_none(),
            Column::Bool(v) => v[row].is_none(),
        }
    }

    /// Cell accessor producing an owned [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::F64(v) => v[row].map(Value::F64).unwrap_or(Value::Null),
            Column::I64(v) => v[row].map(Value::I64).unwrap_or(Value::Null),
            Column::Str(v) => v[row].clone().map(Value::Str).unwrap_or(Value::Null),
            Column::Bool(v) => v[row].map(Value::Bool).unwrap_or(Value::Null),
        }
    }

    /// Typed view of a float column.
    pub fn as_f64(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of an integer column.
    pub fn as_i64(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of a string column.
    pub fn as_str(&self) -> Option<&[Option<String>]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of a boolean column.
    pub fn as_bool(&self) -> Option<&[Option<bool>]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view: floats pass through, integers widen; other types fail.
    pub fn numeric(&self, name: &str) -> Result<Vec<Option<f64>>> {
        match self {
            Column::F64(v) => Ok(v.clone()),
            Column::I64(v) => Ok(v.iter().map(|x| x.map(|i| i as f64)).collect()),
            other => Err(FrameError::TypeMismatch {
                column: name.to_string(),
                requested: "numeric",
                actual: other.type_name(),
            }),
        }
    }

    /// Creates a new column holding only the rows in `keep` (in order).
    pub fn take(&self, keep: &[usize]) -> Column {
        match self {
            Column::F64(v) => Column::F64(keep.iter().map(|&i| v[i]).collect()),
            Column::I64(v) => Column::I64(keep.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(keep.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(keep.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Appends a [`Value`] to the column, coercing integers into float
    /// columns. Returns an error on incompatible types.
    pub fn push_value(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (Column::F64(v), Value::Null) => v.push(None),
            (Column::F64(v), Value::F64(x)) => v.push(Some(x)),
            (Column::F64(v), Value::I64(x)) => v.push(Some(x as f64)),
            (Column::I64(v), Value::Null) => v.push(None),
            (Column::I64(v), Value::I64(x)) => v.push(Some(x)),
            (Column::Str(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Str(x)) => v.push(Some(x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (col, v) => {
                return Err(FrameError::InvalidArgument(format!(
                    "cannot push {v:?} into {} column",
                    col.type_name()
                )))
            }
        }
        Ok(())
    }
}

/// Convenience constructors mirroring `vec!`-style ergonomics.
impl Column {
    /// Builds a float column from plain values (no nulls).
    pub fn from_f64(values: impl IntoIterator<Item = f64>) -> Column {
        Column::F64(values.into_iter().map(Some).collect())
    }

    /// Builds an integer column from plain values (no nulls).
    pub fn from_i64(values: impl IntoIterator<Item = i64>) -> Column {
        Column::I64(values.into_iter().map(Some).collect())
    }

    /// Builds a string column from plain values (no nulls).
    pub fn from_str_iter<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Column {
        Column::Str(values.into_iter().map(|s| Some(s.into())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_nulls() {
        let c = Column::F64(vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.count_present(), 2);
        assert_eq!(c.count_null(), 1);
        assert!(c.is_null_at(1));
        assert!(!c.is_null_at(0));
    }

    #[test]
    fn value_accessor() {
        let c = Column::Str(vec![Some("a".into()), None]);
        assert_eq!(c.value(0), Value::Str("a".into()));
        assert_eq!(c.value(1), Value::Null);
    }

    #[test]
    fn numeric_widens_integers() {
        let c = Column::I64(vec![Some(2), None]);
        let n = c.numeric("x").unwrap();
        assert_eq!(n, vec![Some(2.0), None]);
    }

    #[test]
    fn numeric_rejects_strings() {
        let c = Column::from_str_iter(["a"]);
        let err = c.numeric("name").unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from_i64([10, 20, 30]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t, Column::from_i64([30, 10, 10]));
    }

    #[test]
    fn push_value_coerces_int_to_float() {
        let mut c = Column::F64(vec![]);
        c.push_value(Value::I64(4)).unwrap();
        assert_eq!(c, Column::F64(vec![Some(4.0)]));
    }

    #[test]
    fn push_value_type_error() {
        let mut c = Column::I64(vec![]);
        assert!(c.push_value(Value::Str("x".into())).is_err());
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::F64(1.5).to_string(), "1.5");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
