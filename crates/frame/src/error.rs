//! Error type shared by all `frame` operations.

use std::fmt;

/// Result alias for fallible `frame` operations.
pub type Result<T> = std::result::Result<T, FrameError>;

/// Errors produced by dataframe construction, access and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A referenced column name does not exist in the frame.
    UnknownColumn(String),
    /// A column was added whose length differs from the frame's row count.
    LengthMismatch {
        /// Column being inserted.
        column: String,
        /// Length of the offending column.
        got: usize,
        /// Row count of the frame.
        expected: usize,
    },
    /// A column exists but has a different type than requested.
    TypeMismatch {
        /// Column being accessed.
        column: String,
        /// Type requested by the caller.
        requested: &'static str,
        /// Actual type of the column.
        actual: &'static str,
    },
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// Malformed CSV input.
    Csv {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Row index out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows in the frame.
        len: usize,
    },
    /// Operation required a non-empty input (e.g. quantile of nothing).
    Empty(&'static str),
    /// An underlying reader failed while streaming CSV chunks. The message
    /// is the `std::io::Error` rendering (kept as text so `FrameError` stays
    /// `Clone + PartialEq`).
    Io(String),
    /// Generic invalid-argument error.
    InvalidArgument(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            FrameError::LengthMismatch {
                column,
                got,
                expected,
            } => write!(
                f,
                "column `{column}` has length {got} but the frame has {expected} rows"
            ),
            FrameError::TypeMismatch {
                column,
                requested,
                actual,
            } => write!(f, "column `{column}` is of type {actual}, not {requested}"),
            FrameError::DuplicateColumn(name) => write!(f, "column `{name}` already exists"),
            FrameError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            FrameError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds for frame of {len} rows")
            }
            FrameError::Empty(what) => write!(f, "{what} requires a non-empty input"),
            FrameError::Io(message) => write!(f, "I/O error: {message}"),
            FrameError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column() {
        let e = FrameError::UnknownColumn("power".into());
        assert_eq!(e.to_string(), "unknown column `power`");
    }

    #[test]
    fn display_length_mismatch() {
        let e = FrameError::LengthMismatch {
            column: "x".into(),
            got: 3,
            expected: 5,
        };
        assert!(e.to_string().contains("length 3"));
        assert!(e.to_string().contains("5 rows"));
    }

    #[test]
    fn display_csv() {
        let e = FrameError::Csv {
            line: 7,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FrameError::Empty("quantile"));
    }
}
