//! The [`DataFrame`] type: equal-length named columns with relational
//! operations sized for this study (hundreds to millions of rows).

use crate::column::{Column, Value};
use crate::error::{FrameError, Result};
use crate::series::Series;
use std::collections::HashMap;

/// An ordered set of named, equal-length, nullable columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
    rows: usize,
}

impl DataFrame {
    /// Creates an empty frame with no columns and no rows.
    pub fn new() -> DataFrame {
        DataFrame::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the frame has no rows (it may still have columns).
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Adds a column. The first column fixes the row count; later columns
    /// must match it. Errors on duplicates and length mismatches.
    pub fn add_column(&mut self, name: impl Into<String>, column: Column) -> Result<()> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(FrameError::DuplicateColumn(name));
        }
        if self.columns.is_empty() {
            self.rows = column.len();
        } else if column.len() != self.rows {
            return Err(FrameError::LengthMismatch {
                column: name,
                got: column.len(),
                expected: self.rows,
            });
        }
        self.names.push(name);
        self.columns.push(column);
        Ok(())
    }

    /// Builder-style [`add_column`](Self::add_column).
    pub fn with_column(mut self, name: impl Into<String>, column: Column) -> Result<DataFrame> {
        self.add_column(name, column)?;
        Ok(self)
    }

    /// Index of a column by name.
    fn index_of(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| FrameError::UnknownColumn(name.to_string()))
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.index_of(name)?])
    }

    /// A named view of a column as a [`Series`].
    pub fn series(&self, name: &str) -> Result<Series> {
        Ok(Series::new(name, self.column(name)?.clone()))
    }

    /// Numeric view of a column (integers widen to f64).
    pub fn numeric(&self, name: &str) -> Result<Vec<Option<f64>>> {
        self.column(name)?.numeric(name)
    }

    /// One cell as an owned [`Value`].
    pub fn value(&self, name: &str, row: usize) -> Result<Value> {
        if row >= self.rows {
            return Err(FrameError::RowOutOfBounds {
                row,
                len: self.rows,
            });
        }
        Ok(self.column(name)?.value(row))
    }

    /// New frame with only the listed columns, in the listed order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for &n in names {
            out.add_column(n, self.column(n)?.clone())?;
        }
        Ok(out)
    }

    /// New frame holding the rows at `indices` (may repeat / reorder).
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.rows) {
            return Err(FrameError::RowOutOfBounds {
                row: bad,
                len: self.rows,
            });
        }
        let mut out = DataFrame::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            out.add_column(name.clone(), col.take(indices))?;
        }
        Ok(out)
    }

    /// Rows matching a predicate over the row index.
    pub(crate) fn filter_by_index(&self, mut pred: impl FnMut(usize) -> bool) -> Result<DataFrame> {
        let keep: Vec<usize> = (0..self.rows).filter(|&i| pred(i)).collect();
        self.take(&keep)
    }

    /// Rows where the named numeric column is non-null and satisfies `pred`.
    pub fn filter_numeric(
        &self,
        name: &str,
        mut pred: impl FnMut(f64) -> bool,
    ) -> Result<DataFrame> {
        let values = self.numeric(name)?;
        self.filter_by_index(|i| values[i].map(&mut pred).unwrap_or(false))
    }

    /// Stable sort by a numeric column, nulls last.
    pub fn sort_by_numeric(&self, name: &str, ascending: bool) -> Result<DataFrame> {
        let values = self.numeric(name)?;
        let mut idx: Vec<usize> = (0..self.rows).collect();
        idx.sort_by(|&a, &b| match (values[a], values[b]) {
            (Some(x), Some(y)) => {
                let ord = x.partial_cmp(&y).expect("NaN in sort key");
                if ascending {
                    ord
                } else {
                    ord.reverse()
                }
            }
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        });
        self.take(&idx)
    }

    /// Group rows by the string key in `key` (nulls grouped under `None`)
    /// and return `(key, row_indices)` pairs in first-appearance order.
    pub fn group_indices_by_str(&self, key: &str) -> Result<Vec<(Option<String>, Vec<usize>)>> {
        let col = self.column(key)?;
        let values = col.as_str().ok_or_else(|| FrameError::TypeMismatch {
            column: key.to_string(),
            requested: "str",
            actual: col.type_name(),
        })?;
        let mut order: Vec<Option<String>> = Vec::new();
        let mut map: HashMap<Option<String>, Vec<usize>> = HashMap::new();
        for (i, v) in values.iter().enumerate() {
            let entry = map.entry(v.clone());
            if let std::collections::hash_map::Entry::Vacant(_) = entry {
                order.push(v.clone());
            }
            map.entry(v.clone()).or_default().push(i);
        }
        Ok(order
            .into_iter()
            .map(|k| {
                let rows = map.remove(&k).expect("key recorded in order map");
                (k, rows)
            })
            .collect())
    }

    /// Vertically concatenates another frame with identical schema.
    pub fn concat(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.names != other.names {
            return Err(FrameError::InvalidArgument(
                "concat requires identical column names and order".into(),
            ));
        }
        let mut out = DataFrame::new();
        for ((name, a), b) in self.names.iter().zip(&self.columns).zip(&other.columns) {
            let merged = match (a, b) {
                (Column::F64(x), Column::F64(y)) => {
                    Column::F64(x.iter().chain(y).copied().collect())
                }
                (Column::I64(x), Column::I64(y)) => {
                    Column::I64(x.iter().chain(y).copied().collect())
                }
                (Column::Str(x), Column::Str(y)) => {
                    Column::Str(x.iter().chain(y).cloned().collect())
                }
                (Column::Bool(x), Column::Bool(y)) => {
                    Column::Bool(x.iter().chain(y).copied().collect())
                }
                (a, b) => {
                    return Err(FrameError::TypeMismatch {
                        column: name.clone(),
                        requested: a.type_name(),
                        actual: b.type_name(),
                    })
                }
            };
            out.add_column(name.clone(), merged)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::new()
            .with_column("rank", Column::from_i64([1, 2, 3, 4]))
            .unwrap()
            .with_column(
                "power",
                Column::F64(vec![Some(30.0), None, Some(10.0), Some(20.0)]),
            )
            .unwrap()
            .with_column(
                "vendor",
                Column::Str(vec![
                    Some("HPE".into()),
                    Some("HPE".into()),
                    None,
                    Some("Dell".into()),
                ]),
            )
            .unwrap()
    }

    #[test]
    fn dimensions() {
        let df = sample();
        assert_eq!(df.len(), 4);
        assert_eq!(df.width(), 3);
        assert_eq!(df.names(), &["rank", "power", "vendor"]);
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = sample()
            .with_column("rank", Column::from_i64([9, 9, 9, 9]))
            .unwrap_err();
        assert!(matches!(err, FrameError::DuplicateColumn(_)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = sample()
            .with_column("x", Column::from_i64([1]))
            .unwrap_err();
        assert!(matches!(err, FrameError::LengthMismatch { .. }));
    }

    #[test]
    fn select_projects_and_orders() {
        let df = sample().select(&["vendor", "rank"]).unwrap();
        assert_eq!(df.names(), &["vendor", "rank"]);
        assert_eq!(df.len(), 4);
    }

    #[test]
    fn unknown_column_error() {
        assert!(matches!(
            sample().column("nope"),
            Err(FrameError::UnknownColumn(_))
        ));
    }

    #[test]
    fn filter_numeric_drops_nulls_and_nonmatching() {
        let df = sample().filter_numeric("power", |p| p >= 20.0).unwrap();
        assert_eq!(df.len(), 2); // 30.0 and 20.0; null row excluded
    }

    #[test]
    fn sort_puts_nulls_last() {
        let df = sample().sort_by_numeric("power", true).unwrap();
        let power = df.numeric("power").unwrap();
        assert_eq!(power, vec![Some(10.0), Some(20.0), Some(30.0), None]);
    }

    #[test]
    fn sort_descending() {
        let df = sample().sort_by_numeric("power", false).unwrap();
        let power = df.numeric("power").unwrap();
        assert_eq!(power, vec![Some(30.0), Some(20.0), Some(10.0), None]);
    }

    #[test]
    fn take_out_of_bounds() {
        assert!(matches!(
            sample().take(&[0, 9]),
            Err(FrameError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn group_by_string_keeps_first_appearance_order() {
        let groups = sample().group_indices_by_str("vendor").unwrap();
        let keys: Vec<_> = groups.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(
            keys,
            vec![Some("HPE".to_string()), None, Some("Dell".to_string())]
        );
        assert_eq!(groups[0].1, vec![0, 1]);
    }

    #[test]
    fn concat_roundtrip() {
        let df = sample();
        let cat = df.concat(&df).unwrap();
        assert_eq!(cat.len(), 8);
        assert_eq!(cat.value("rank", 4).unwrap(), Value::I64(1));
    }

    #[test]
    fn concat_schema_mismatch() {
        let df = sample();
        let other = df.select(&["rank"]).unwrap();
        assert!(df.concat(&other).is_err());
    }

    #[test]
    fn series_stats_via_frame() {
        let s = sample().series("power").unwrap();
        assert_eq!(s.sum().unwrap(), 60.0);
        assert_eq!(s.count_present(), 3);
    }
}
