//! A minimal, deterministic JSON layer — std only, no macros, no traits.
//!
//! The serving protocol needs exactly two things from JSON: parse one
//! request line into a lookup-able value, and write one response line with
//! a **stable field order** so warm and cold answers to the same query are
//! byte-identical (pinned by `tests/serve.rs`). [`Value`] keeps object
//! fields in document order (a `Vec`, not a map), and [`Obj`] writes
//! fields strictly in call order. Floats are written with Rust's shortest
//! round-trip formatting, which is a pure function of the bits — exact
//! carbon bits additionally travel as 16-digit hex strings
//! ([`Obj::field_bits`]) so clients never depend on decimal round-trips.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve document field order and are
/// queried by linear scan — request lines are small.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (as `f64` — request numbers are small integers or
    /// levels; exact 64-bit quantities travel as hex strings).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in document order (first duplicate wins on get).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions,
    /// negatives and anything above 2^53).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        ((0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0).then_some(n as usize)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a request line failed to parse (byte offset included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing content rejected).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing content after the JSON value"));
    }
    Ok(value)
}

/// Nesting depth guard — request lines are flat; a deeply nested bomb is
/// rejected rather than recursed into.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.at += 1;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves `at` past the digits; undo the
                            // +1 the common path below would double-apply.
                            self.at -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.at + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.at..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.at = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Writes `s` as a JSON string literal (quotes included) into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An ordered JSON object writer: fields appear exactly in call order, so
/// a response's bytes are a pure function of the values written.
pub struct Obj {
    buf: String,
    empty: bool,
}

impl Obj {
    /// Starts `{`.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn field_str(mut self, key: &str, value: &str) -> Obj {
        self.key(key);
        write_escaped(&mut self.buf, value);
        self
    }

    /// Adds an integer field.
    pub fn field_int(mut self, key: &str, value: usize) -> Obj {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (shortest round-trip decimal; non-finite values
    /// become `null`, which the protocol never produces for results).
    pub fn field_num(mut self, key: &str, value: f64) -> Obj {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a float's exact bits as a 16-digit hex string — the field
    /// clients compare for bit-identity.
    pub fn field_bits(self, key: &str, value: f64) -> Obj {
        let hex = format!("{:016x}", value.to_bits());
        self.field_str(key, &hex)
    }

    /// Adds a boolean field.
    pub fn field_bool(mut self, key: &str, value: bool) -> Obj {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON fragment (an [`Obj::finish`] result or an
    /// array built from them) verbatim.
    pub fn field_raw(mut self, key: &str, json: &str) -> Obj {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes `}` and returns the bytes.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Obj {
        Obj::new()
    }
}

/// Renders pre-rendered JSON fragments as an array.
pub fn array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push(']');
    out
}

/// Parses a 16-digit hex string back into `f64` bits — the inverse of
/// [`Obj::field_bits`].
pub fn bits_from_hex(hex: &str) -> Option<f64> {
    (hex.len() == 16)
        .then(|| u64::from_str_radix(hex, 16).ok())
        .flatten()
        .map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_line() {
        let v = parse(r#"{"op":"assess","draws":64,"seed":9,"warm":true,"x":null}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("assess"));
        assert_eq!(v.get("draws").and_then(Value::as_usize), Some(64));
        assert_eq!(v.get("seed").and_then(Value::as_usize), Some(9));
        assert_eq!(v.get("warm").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nesting_arrays_and_escapes() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"s":"line\nbreak A😀"}"#).unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("s").and_then(Value::as_str),
            Some("line\nbreak A\u{1F600}")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "[1,]",
            "{} trailing",
            "nul",
            r#""unterminated"#,
            "1e999",
            &format!("{}1{}", "[".repeat(40), "]".repeat(40)),
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn writer_is_ordered_and_escaped() {
        let line = Obj::new()
            .field_str("op", "status")
            .field_int("n", 3)
            .field_num("x", 1.5)
            .field_bool("ok", true)
            .field_str("s", "a\"b\\c\nd")
            .field_raw("arr", &array(&["1".into(), "2".into()]))
            .finish();
        assert_eq!(
            line,
            r#"{"op":"status","n":3,"x":1.5,"ok":true,"s":"a\"b\\c\nd","arr":[1,2]}"#
        );
        let back = parse(&line).unwrap();
        assert_eq!(back.get("s").and_then(Value::as_str), Some("a\"b\\c\nd"));
    }

    #[test]
    fn bits_round_trip_exactly() {
        for x in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1234.5678e300] {
            let line = Obj::new().field_bits("b", x).finish();
            let v = parse(&line).unwrap();
            let back = bits_from_hex(v.get("b").and_then(Value::as_str).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        assert_eq!(bits_from_hex("zz"), None);
    }
}
