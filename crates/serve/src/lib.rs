#![warn(missing_docs)]

//! `serve` — the std-only resident-assessment front end (ROADMAP item 1).
//!
//! A thin JSONL-over-TCP layer over [`easyc::FleetState`]: the server
//! ([`server::spawn`]) keeps one warm fleet resident and answers
//! `assess` / `sweep` / `compare` / `invalidate` requests through a
//! bounded queue feeding the deterministic
//! [`parallel::pool::ThreadPool`]; the client ([`client::Client`]) is a
//! blocking line-at-a-time counterpart for the CLI `query` subcommand,
//! the CI smoke and the tests.
//!
//! Everything result-bearing is **bit-pinned**: responses have a fixed
//! field order (equal answers are equal bytes), carbon totals travel with
//! exact-bit hex fields, fleet totals fold through
//! [`easyc::PartialAssessment`], and a warm answer is byte-identical to a
//! cold one (`tests/serve.rs`). In the spirit of the `auditor` crate, the
//! JSON layer ([`json`]) is hand-rolled std-only code — no external
//! dependencies anywhere.

pub mod client;
pub mod json;
pub mod server;

pub use client::Client;
pub use server::{spawn, ServeConfig, Server};
