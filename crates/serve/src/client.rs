//! A minimal blocking JSONL client — one request line out, one response
//! line back. Used by the CLI `query` subcommand and the serving tests.

use crate::json::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. Requests are strictly sequential per connection
/// (the protocol answers in order); open several clients for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line (newline appended) and returns the raw
    /// response line (newline stripped) — the bytes tests compare.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Sends one request line and parses the response.
    pub fn request(&mut self, line: &str) -> std::io::Result<Value> {
        let raw = self.request_raw(line)?;
        json::parse(&raw).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })
    }

    /// Sends a request and writes without waiting — used by disconnect
    /// tests; normal callers want [`Client::request`].
    pub fn send_only(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }
}
