//! The resident assessment server — a JSONL-over-TCP request loop.
//!
//! # Request lifecycle
//!
//! ```text
//! client ──line──▶ connection thread ──try_send──▶ bounded queue
//!                   │    (parse, route)               │
//!                   │ malformed / oversized /          ▼
//!                   │ queue-full answered here   ThreadPool worker
//!                   ◀──────────reply channel───── (FleetState query)
//! ```
//!
//! One OS thread per connection owns the socket and never computes; the
//! bounded `sync_channel` queue is the **only** path into the compute
//! [`ThreadPool`], so a busy server sheds load with a structured
//! `queue-full` error instead of queueing unboundedly. Every reply travels
//! back on a per-request rendezvous channel with a timeout, so a stuck
//! query produces a `timeout` error while the connection stays
//! serviceable. Shutdown (the `shutdown` op or [`Server::shutdown`]) stops
//! the acceptor, lets in-flight requests finish, unparks held workers and
//! joins everything — no detached threads survive.
//!
//! Protocol ops: `status`, `assess`, `sweep`, `compare`, `invalidate`,
//! `hold`/`release` (diagnostic worker-occupancy control used by the
//! backpressure tests) and `shutdown`. Every response is a single JSON
//! line whose field order is fixed, so equal answers are equal bytes; all
//! carbon totals carry exact-bit hex fields next to the decimal ones.
//! Fleet totals are folded through [`PartialAssessment`] — the same pinned
//! fold shape every other result path uses.

use crate::json::{self, Obj, Value};
use easyc::{
    DataScenario, FleetState, Interval, InvalidateOutcome, MetricMask, OverrideSet,
    PartialAssessment, ScenarioMatrix,
};
use parallel::pool::ThreadPool;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Compute workers draining the request queue (each may itself fan a
    /// query out over the state's configured pool).
    pub workers: usize,
    /// Bound of the request queue; a full queue answers `queue-full`.
    pub queue_depth: usize,
    /// Per-request reply deadline; exceeding it answers `timeout`.
    pub request_timeout: Duration,
    /// Longest accepted request line, bytes; longer answers `oversized-request`.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            request_timeout: Duration::from_secs(30),
            max_line_bytes: 1 << 20,
        }
    }
}

/// How often blocked socket reads wake to check the stop flag.
const POLL_TICK: Duration = Duration::from_millis(50);

struct Shared {
    state: RwLock<FleetState>,
    config: ServeConfig,
    addr: SocketAddr,
    stop: AtomicBool,
    /// Requests currently queued or computing (reported by `status`).
    queued: AtomicUsize,
    /// `hold` ops park workers until this release counter advances (or
    /// shutdown) — the deterministic occupancy control behind the
    /// queue-full tests.
    releases: Mutex<u64>,
    released: Condvar,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn read_state(&self) -> std::sync::RwLockReadGuard<'_, FleetState> {
        // A poisoned lock means some earlier request panicked; the state
        // itself is read-only to queries, so keep serving.
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_state(&self) -> std::sync::RwLockWriteGuard<'_, FleetState> {
        self.state.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// One queued request: the parsed line plus the reply rendezvous.
struct Request {
    value: Value,
    reply: SyncSender<String>,
}

/// A running server: the bound address plus the shutdown/join handle.
/// Dropping the handle shuts the server down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets in-flight requests finish, and joins every
    /// server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server shuts down (a `shutdown` request), then
    /// joins every server thread — what the CLI `serve` subcommand sits in.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unpark held workers so they observe the stop flag.
        *self
            .shared
            .releases
            .lock()
            .unwrap_or_else(|e| e.into_inner()) += 1;
        self.shared.released.notify_all();
        // Wake the acceptor out of `accept()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

/// Binds `addr` and serves `state` until shutdown — see the
/// [module docs](self) for the request lifecycle.
pub fn spawn(
    state: FleetState,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        state: RwLock::new(state),
        config,
        addr: local,
        stop: AtomicBool::new(false),
        queued: AtomicUsize::new(0),
        releases: Mutex::new(0),
        released: Condvar::new(),
    });

    let (tx, rx) = sync_channel::<Request>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let pool = ThreadPool::new(config.workers.max(1));
    for _ in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        pool.execute(move || loop {
            // Take the next request with the receiver lock *dropped*
            // before computing, so workers drain the queue concurrently.
            let request = {
                let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                guard.recv()
            };
            let Ok(request) = request else { break };
            let response = handle_request(&request.value, &shared);
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            // The client may have timed out or disconnected; that drops
            // the receiver and this send fails — fine either way.
            let _ = request.reply.send(response);
        });
    }

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || {
            // Keep the pool alive (and its workers draining) until every
            // connection thread has exited and dropped its queue sender.
            let _pool = pool;
            let mut connections: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_shared.stopping() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let tx = tx.clone();
                let conn_shared = Arc::clone(&accept_shared);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || connection(stream, tx, conn_shared));
                match handle {
                    Ok(h) => connections.push(h),
                    Err(_) => continue,
                }
            }
            drop(tx);
            for handle in connections {
                let _ = handle.join();
            }
        })?;

    Ok(Server {
        addr: local,
        shared,
        accept: Some(accept),
    })
}

/// What one bounded line read produced.
enum LineRead {
    /// A complete line within the byte bound (newline stripped).
    Line(String),
    /// The line exceeded the bound; it was consumed through its newline so
    /// the stream stays in sync.
    Oversized,
    /// Peer gone, unrecoverable error, or server stopping.
    Closed,
}

/// Reads one `\n`-terminated line from `stream`, buffering leftovers in
/// `buf` (pipelined requests), discarding — with bounded memory — anything
/// longer than `max` bytes, and polling the stop flag while blocked.
fn read_line_bounded(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    max: usize,
    shared: &Shared,
) -> LineRead {
    let mut discarding = false;
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let rest = buf.split_off(pos + 1);
            let mut line = std::mem::replace(buf, rest);
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if discarding || line.len() > max {
                return LineRead::Oversized;
            }
            return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
        }
        if buf.len() > max {
            discarding = true;
            buf.clear();
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return LineRead::Closed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stopping() {
                    return LineRead::Closed;
                }
            }
            Err(_) => return LineRead::Closed,
        }
    }
}

/// Owns one connection: read a line, answer a line, repeat. Transport
/// errors (disconnects mid-request or mid-response) end the connection —
/// never the server.
fn connection(stream: TcpStream, tx: SyncSender<Request>, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    let mut buf = Vec::new();
    loop {
        if shared.stopping() {
            return;
        }
        let line =
            match read_line_bounded(&mut reader, &mut buf, shared.config.max_line_bytes, &shared) {
                LineRead::Closed => return,
                LineRead::Oversized => error_line(
                    "oversized-request",
                    &format!(
                        "request line exceeds {} bytes",
                        shared.config.max_line_bytes
                    ),
                ),
                LineRead::Line(line) if line.trim().is_empty() => continue,
                LineRead::Line(line) => route(&line, &tx, &shared),
            };
        if writer.write_all(line.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            return;
        }
    }
}

/// Parses one request line and produces its response: transport-layer ops
/// (`status`, `release`, `shutdown`) answer inline on the connection
/// thread; compute ops travel through the bounded queue to a pool worker.
fn route(line: &str, tx: &SyncSender<Request>, shared: &Shared) -> String {
    let value = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_line("malformed-request", &format!("invalid JSON: {e}")),
    };
    let Some(op) = value.get("op").and_then(Value::as_str) else {
        return error_line("malformed-request", "missing string field `op`");
    };
    match op {
        "status" => {
            let state = shared.read_state();
            Obj::new()
                .field_bool("ok", true)
                .field_str("op", "status")
                .field_int("systems", state.len())
                .field_bool("warm", state.is_warm())
                .field_str("source_hash", &format!("{:016x}", state.source_hash()))
                .field_int("queued", shared.queued.load(Ordering::SeqCst))
                .field_int("workers", shared.config.workers.max(1))
                .finish()
        }
        "release" => {
            *shared.releases.lock().unwrap_or_else(|e| e.into_inner()) += 1;
            shared.released.notify_all();
            Obj::new()
                .field_bool("ok", true)
                .field_str("op", "release")
                .finish()
        }
        "shutdown" => {
            shared.stop.store(true, Ordering::SeqCst);
            *shared.releases.lock().unwrap_or_else(|e| e.into_inner()) += 1;
            shared.released.notify_all();
            // Wake the acceptor so it stops taking connections.
            let _ = TcpStream::connect(shared.addr);
            Obj::new()
                .field_bool("ok", true)
                .field_str("op", "shutdown")
                .finish()
        }
        "assess" | "sweep" | "compare" | "invalidate" | "hold" => {
            let (reply_tx, reply_rx) = sync_channel::<String>(1);
            shared.queued.fetch_add(1, Ordering::SeqCst);
            match tx.try_send(Request {
                value,
                reply: reply_tx,
            }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    shared.queued.fetch_sub(1, Ordering::SeqCst);
                    return error_line(
                        "queue-full",
                        &format!(
                            "request queue is full ({} pending); retry later",
                            shared.config.queue_depth
                        ),
                    );
                }
                Err(TrySendError::Disconnected(_)) => {
                    shared.queued.fetch_sub(1, Ordering::SeqCst);
                    return error_line("shutting-down", "server is shutting down");
                }
            }
            match reply_rx.recv_timeout(shared.config.request_timeout) {
                Ok(response) => response,
                Err(RecvTimeoutError::Timeout) => error_line(
                    "timeout",
                    &format!(
                        "request exceeded {} ms",
                        shared.config.request_timeout.as_millis()
                    ),
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    error_line("shutting-down", "server is shutting down")
                }
            }
        }
        other => error_line("unknown-op", &format!("unknown op `{other}`")),
    }
}

/// Computes one queued request on a pool worker.
fn handle_request(value: &Value, shared: &Shared) -> String {
    match value.get("op").and_then(Value::as_str) {
        Some("assess") => op_assess(value, shared),
        Some("sweep") => op_sweep(value, shared),
        Some("compare") => op_compare(value, shared),
        Some("invalidate") => op_invalidate(value, shared),
        Some("hold") => op_hold(shared),
        _ => error_line("unknown-op", "unroutable op reached a worker"),
    }
}

fn error_line(code: &str, message: &str) -> String {
    Obj::new()
        .field_bool("ok", false)
        .field_str("code", code)
        .field_str("error", message)
        .finish()
}

/// Optional request numbers with defaults; `Err` on present-but-invalid.
fn opt_usize(value: &Value, key: &str, default: usize) -> Result<usize, String> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn opt_f64(value: &Value, key: &str) -> Result<Option<f64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

/// The draw plan fields shared by every compute op.
struct PlanSpec {
    draws: usize,
    seed: u64,
    level: Option<f64>,
    workers: Option<usize>,
}

fn plan_spec(value: &Value, default_draws: usize) -> Result<PlanSpec, String> {
    let draws = opt_usize(value, "draws", default_draws)?;
    let seed = opt_usize(value, "seed", 0)? as u64;
    let level = opt_f64(value, "confidence")?;
    if let Some(level) = level {
        if !(level > 0.0 && level < 1.0) {
            return Err("field `confidence` must lie strictly between 0 and 1".into());
        }
    }
    let workers = match value.get("workers") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|w| *w > 0)
                .ok_or("field `workers` must be a positive integer")?,
        ),
    };
    Ok(PlanSpec {
        draws,
        seed,
        level,
        workers,
    })
}

/// The optional single-scenario fields of an `assess` request: `scenario`
/// (name), `mask` (spec string), `pue` / `utilization` / `aci` overrides.
/// All absent = the state's default scenario (warm-path eligible).
fn scenario_spec(value: &Value) -> Result<Option<DataScenario>, String> {
    let name = match value.get("scenario") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or("field `scenario` must be a string")?
                .to_string(),
        ),
    };
    let mask = match value.get("mask") {
        None => None,
        Some(v) => {
            let spec = v.as_str().ok_or("field `mask` must be a string")?;
            Some(MetricMask::parse(spec).map_err(|e| format!("bad mask: {e}"))?)
        }
    };
    let overrides = OverrideSet {
        pue: opt_f64(value, "pue")?,
        utilization: opt_f64(value, "utilization")?,
        aci_g_per_kwh: opt_f64(value, "aci")?,
    };
    if name.is_none() && mask.is_none() && overrides == OverrideSet::NONE {
        return Ok(None);
    }
    let scenario = DataScenario::masked(
        name.unwrap_or_else(|| "default".to_string()),
        mask.unwrap_or(MetricMask::ALL),
    )
    .with_overrides(overrides);
    Ok(Some(scenario))
}

/// Renders an optional interval with exact bits (`null` when absent).
fn interval_json(interval: Option<Interval>) -> String {
    match interval {
        None => "null".to_string(),
        Some(iv) => Obj::new()
            .field_num("point", iv.point)
            .field_num("lo", iv.lo)
            .field_num("hi", iv.hi)
            .field_bits("point_bits", iv.point)
            .field_bits("lo_bits", iv.lo)
            .field_bits("hi_bits", iv.hi)
            .finish(),
    }
}

/// Folds one scenario slice through the pinned [`PartialAssessment`]
/// shape and renders its summary object.
fn slice_summary(
    slice: &easyc::ScenarioSlice,
    interval: Option<Interval>,
    embodied_interval: Option<Interval>,
) -> String {
    let mut partial = PartialAssessment::identity(0);
    partial.absorb(0, &slice.footprints);
    let totals = partial.finish();
    Obj::new()
        .field_str("name", &slice.scenario.name)
        .field_int("systems", totals.total)
        .field_int("op_covered", totals.op_covered)
        .field_int("emb_covered", totals.emb_covered)
        .field_int("op_errors", totals.op_errors)
        .field_int("emb_errors", totals.emb_errors)
        .field_num("operational_mt", totals.operational_mt)
        .field_bits("operational_bits", totals.operational_mt)
        .field_num("embodied_mt", totals.embodied_mt)
        .field_bits("embodied_bits", totals.embodied_mt)
        .field_raw("operational_interval", &interval_json(interval))
        .field_raw("embodied_interval", &interval_json(embodied_interval))
        .finish()
}

/// Renders every scenario slice paired with its intervals — by iterator
/// zip, never by index, so a shape mismatch inside the engine surfaces as
/// a structured `internal-error` frame instead of a panicked worker and a
/// dropped connection (auditor rule `panic-surface`).
fn scenario_summaries(output: &easyc::AssessmentOutput) -> Result<Vec<String>, String> {
    let slices = output.slices();
    let (ops, embs) = (output.intervals(), output.embodied_intervals());
    if ops.len() != slices.len() || embs.len() != slices.len() {
        return Err(format!(
            "interval rows ({}, {}) do not match {} scenario slice(s)",
            ops.len(),
            embs.len(),
            slices.len(),
        ));
    }
    Ok(slices
        .iter()
        .zip(ops)
        .zip(embs)
        .map(|((slice, op), emb)| slice_summary(slice, *op, *emb))
        .collect())
}

fn op_assess(value: &Value, shared: &Shared) -> String {
    let scenario = match scenario_spec(value) {
        Ok(s) => s,
        Err(e) => return error_line("bad-scenario", &e),
    };
    let plan = match plan_spec(value, 0) {
        Ok(p) => p,
        Err(e) => return error_line("malformed-request", &e),
    };
    let state = shared.read_state();
    let mut query = state.query().uncertainty(plan.draws).seed(plan.seed);
    if let Some(level) = plan.level {
        query = query.confidence(level);
    }
    if let Some(workers) = plan.workers {
        query = query.workers(workers);
    }
    if let Some(scenario) = scenario {
        query = query.scenario(scenario);
    }
    let output = query.run();
    let result = match scenario_summaries(&output) {
        Ok(summaries) => match summaries.into_iter().next() {
            Some(s) => s,
            None => return error_line("internal-error", "assessment produced no scenarios"),
        },
        Err(e) => return error_line("internal-error", &e),
    };
    Obj::new()
        .field_bool("ok", true)
        .field_str("op", "assess")
        .field_bool("warm", state.is_warm())
        .field_str("source_hash", &format!("{:016x}", state.source_hash()))
        .field_raw("result", &result)
        .finish()
}

/// Parses the `matrix_csv` field shared by `sweep` and `compare`.
fn matrix_spec(value: &Value) -> Result<ScenarioMatrix, String> {
    let text = value
        .get("matrix_csv")
        .and_then(Value::as_str)
        .ok_or("missing string field `matrix_csv`")?;
    let matrix = ScenarioMatrix::from_csv(text).map_err(|e| format!("bad matrix: {e}"))?;
    if matrix.is_empty() {
        return Err("scenario matrix is empty".into());
    }
    Ok(matrix)
}

fn op_sweep(value: &Value, shared: &Shared) -> String {
    let matrix = match matrix_spec(value) {
        Ok(m) => m,
        Err(e) => return error_line("bad-scenario", &e),
    };
    let plan = match plan_spec(value, 0) {
        Ok(p) => p,
        Err(e) => return error_line("malformed-request", &e),
    };
    let state = shared.read_state();
    let mut query = state
        .query()
        .scenarios(&matrix)
        .uncertainty(plan.draws)
        .seed(plan.seed);
    if let Some(level) = plan.level {
        query = query.confidence(level);
    }
    if let Some(workers) = plan.workers {
        query = query.workers(workers);
    }
    let output = query.run();
    let summaries = match scenario_summaries(&output) {
        Ok(s) => s,
        Err(e) => return error_line("internal-error", &e),
    };
    // The same per-(scenario, system) CSV `sweep --out` writes — byte
    // identical, which is what the CI smoke diffs.
    let csv = frame::csv::write(&output.to_frame());
    Obj::new()
        .field_bool("ok", true)
        .field_str("op", "sweep")
        .field_bool("warm", state.is_warm())
        .field_int("systems", state.len())
        .field_int("scenarios", output.len())
        .field_raw("results", &json::array(&summaries))
        .field_str("csv", &csv)
        .finish()
}

fn op_compare(value: &Value, shared: &Shared) -> String {
    let matrix = match matrix_spec(value) {
        Ok(m) => m,
        Err(e) => return error_line("bad-scenario", &e),
    };
    let (Some(baseline), Some(variant)) = (
        value.get("baseline").and_then(Value::as_str),
        value.get("variant").and_then(Value::as_str),
    ) else {
        return error_line(
            "malformed-request",
            "compare needs string fields `baseline` and `variant`",
        );
    };
    for name in [baseline, variant] {
        if !matrix.scenarios().iter().any(|s| s.name == name) {
            return error_line("bad-scenario", &format!("`{name}` is not in the matrix"));
        }
    }
    let plan = match plan_spec(value, 1000) {
        Ok(p) if p.draws > 0 => p,
        Ok(_) => return error_line("malformed-request", "compare needs `draws` > 0"),
        Err(e) => return error_line("malformed-request", &e),
    };
    let state = shared.read_state();
    let mut query = state
        .query()
        .scenarios(&matrix)
        .uncertainty(plan.draws)
        .seed(plan.seed);
    if let Some(level) = plan.level {
        query = query.confidence(level);
    }
    if let Some(workers) = plan.workers {
        query = query.workers(workers);
    }
    let output = query.run();
    let Some(delta) = output.compare(baseline, variant) else {
        return error_line(
            "no-paired-draws",
            &format!("no paired draws for {baseline},{variant}"),
        );
    };
    Obj::new()
        .field_bool("ok", true)
        .field_str("op", "compare")
        .field_bool("warm", state.is_warm())
        .field_str("baseline", &delta.baseline)
        .field_str("variant", &delta.variant)
        .field_raw("operational", &interval_json(delta.operational))
        .field_raw("embodied", &interval_json(delta.embodied))
        .field_raw("total", &interval_json(delta.total))
        .finish()
}

fn op_invalidate(value: &Value, shared: &Shared) -> String {
    let Some(hash) = value
        .get("hash")
        .and_then(Value::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok())
    else {
        return error_line(
            "malformed-request",
            "invalidate needs a hex string field `hash`",
        );
    };
    let mut state = shared.write_state();
    let outcome = state.invalidate(hash);
    Obj::new()
        .field_bool("ok", true)
        .field_str("op", "invalidate")
        .field_str(
            "code",
            match outcome {
                InvalidateOutcome::Evicted => "evicted",
                InvalidateOutcome::Stale => "stale-hash",
            },
        )
        .field_str("source_hash", &format!("{:016x}", state.source_hash()))
        .finish()
}

/// Parks this worker until the next `release` (or shutdown) — occupies
/// exactly one compute slot, deterministically, without any clock.
fn op_hold(shared: &Shared) -> String {
    let seen = {
        let guard = shared.releases.lock().unwrap_or_else(|e| e.into_inner());
        *guard
    };
    let mut guard = shared.releases.lock().unwrap_or_else(|e| e.into_inner());
    while *guard == seen && !shared.stopping() {
        guard = shared
            .released
            .wait(guard)
            .unwrap_or_else(|e| e.into_inner());
    }
    Obj::new()
        .field_bool("ok", true)
        .field_str("op", "hold")
        .finish()
}
