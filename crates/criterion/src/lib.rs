#![warn(missing_docs)]

//! A minimal, API-compatible stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small subset of the criterion surface its benches actually use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Throughput`], [`BenchmarkId`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples; the mean, minimum and maximum per-iteration
//! times are printed. There is no statistical outlier analysis — the point
//! is that `cargo bench` runs, regenerates every figure, and reports
//! honest wall-clock numbers, not that it replaces criterion's statistics.
//!
//! Every measurement is also recorded in-process; when the `BENCH_JSON`
//! environment variable names a path, the `criterion_main!`-generated
//! `main` flushes them there as a JSON array on exit (see
//! [`write_json_if_requested`]), so perf regressions can be tracked
//! machine-readably (e.g. the committed `BENCH_kernels.json`).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark measurement, as recorded for the machine-readable
/// `BENCH_JSON` output.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark label (`group/id`).
    pub label: String,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds.
    pub max_ns: f64,
    /// Number of timed samples behind the statistics.
    pub samples: usize,
}

/// Measurements recorded by every [`run_one`] of this process, flush order
/// = execution order.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Flushes this process's recorded measurements as a JSON array to the
/// path named by the `BENCH_JSON` environment variable; a no-op when the
/// variable is unset or empty. Called automatically by the
/// [`criterion_main!`]-generated `main` after all groups have run.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let results = RESULTS.lock().expect("bench results poisoned");
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let label: String = r
            .label
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c if c.is_control() => vec![' '],
                c => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "  {{\"label\": \"{label}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"max_ns\": {:.1}, \"samples\": {}}}{}\n",
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    if let Err(err) = std::fs::write(&path, &out) {
        eprintln!("warning: could not write BENCH_JSON to {path}: {err}");
    }
}

/// Top-level benchmark driver (a shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    /// When true (`--test` was passed, as `cargo test` does for bench
    /// targets), run each benchmark body once and skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Reads harness-relevant process arguments (`--test` → smoke mode).
    pub fn configure_from_args(mut self) -> Criterion {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.test_mode, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.test_mode,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Benchmarks a closure with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.test_mode,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// Units processed per benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] times the body.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `body`, collecting one duration per sample.
    pub fn iter<O, R>(&mut self, mut body: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(body());
            return;
        }
        // Warm-up: a few untimed runs to populate caches / branch predictors.
        for _ in 0..2 {
            std::hint::black_box(body());
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(
    label: &str,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        test_mode,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if test_mode {
        println!("test {label} ... ok");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  ({:.1} Kelem/s)", n as f64 / mean.as_secs_f64() / 1e3)
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("{label:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}{rate}");
    RESULTS
        .lock()
        .expect("bench results poisoned")
        .push(BenchResult {
            label: label.to_string(),
            mean_ns: mean.as_nanos() as f64,
            min_ns: min.as_nanos() as f64,
            max_ns: max.as_nanos() as f64,
            samples: bencher.samples.len(),
        });
}

/// Declares a benchmark group: both the `(name, targets...)` and the
/// `name = ...; config = ...; targets = ...` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

/// Re-export of [`std::hint::black_box`] for API compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("shim/smoke", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("shim/group");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        target(&mut c);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("a", 3).0, "a/3");
        assert_eq!(BenchmarkId::from_parameter(8).0, "8");
    }

    #[test]
    fn measurements_are_recorded_and_flushable_as_json() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("shim/json_smoke", |b| b.iter(|| 2 + 2));
        let recorded = RESULTS.lock().expect("results");
        let r = recorded
            .iter()
            .find(|r| r.label == "shim/json_smoke")
            .expect("measurement recorded");
        assert_eq!(r.samples, 2);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        drop(recorded);

        let path = std::env::temp_dir().join("criterion_shim_json_smoke.json");
        std::env::set_var("BENCH_JSON", &path);
        write_json_if_requested();
        std::env::remove_var("BENCH_JSON");
        let body = std::fs::read_to_string(&path).expect("json written");
        let _ = std::fs::remove_file(&path);
        assert!(body.trim_start().starts_with('['));
        assert!(body.trim_end().ends_with(']'));
        assert!(body.contains("\"label\": \"shim/json_smoke\""));
        assert!(body.contains("\"mean_ns\""));
    }
}
