//! Umbrella crate for the Top 500 / EasyC carbon-footprint reproduction.
//!
//! This crate re-exports the workspace members so the examples and
//! integration tests in the repository root can use a single import path.
//! The actual implementation lives in `crates/*`:
//!
//! - [`easyc`] — the paper's primary contribution: the seven-metric carbon
//!   footprint model (operational + embodied), including the composable
//!   data-scenario layer (`easyc::scenario`: availability masks, prior
//!   overrides, scenario matrices) and the staged batch assessment engine
//!   (`easyc::batch`: `MetricsStage → OperationalStage → EmbodiedStage`
//!   over a shared context, chunk-parallel, bit-identical to serial).
//! - [`top500`] — the Top 500 dataset substrate (embedded appendix Table II,
//!   synthetic list generator, public-info enrichment).
//! - [`hwdb`] — hardware and carbon-factor databases.
//! - [`ghg`] — the GHG-protocol style exhaustive accounting baseline.
//! - [`analysis`] — study pipelines regenerating every paper table and
//!   figure, scenario sweeps (`analysis::fleet::scenario_sweep`) and
//!   batch-slice sensitivity (`analysis::sensitivity::from_footprints`).
//! - [`frame`] — columnar mini-dataframe and statistics substrate (batch
//!   results are exposed columnar via `easyc::BatchOutput::to_frame`).
//! - [`parallel`] — std-only deterministic parallel execution substrate.
//! - [`serve`] — the resident-assessment service: a std-only JSONL-over-TCP
//!   front end over a warm `easyc::FleetState` (CLI `serve` / `query`).

pub use analysis;
pub use easyc;
pub use frame;
pub use ghg;
pub use hwdb;
pub use parallel;
pub use serve;
pub use top500;
