//! `top500-carbon` — command-line interface to the EasyC study.
//!
//! ```text
//! top500-carbon study [artifacts_dir]       run the full Top 500 study
//! top500-carbon assess <systems.csv>        assess systems from a CSV
//! top500-carbon template                    print the CSV input template
//! top500-carbon figures <dir>               write every figure/table CSV
//! top500-carbon sweep <scenarios.csv> [systems.csv] [options]
//!                                           assess a scenario matrix in one session
//!   --workers N        session pool size
//!   --out results.csv  write per-(scenario, system) columnar results; under
//!                      --stream the rows are spilled chunk-by-chunk (same
//!                      bytes, bounded memory)
//!   --draws N          Monte-Carlo fleet intervals (operational + embodied)
//!   --confidence L     interval confidence level in (0, 1) (default 0.95)
//!   --seed S           RNG seed for the Monte-Carlo draws (default 0)
//!   --compare A,B      paired scenario comparison B − A: common random
//!                      numbers replay identical per-system perturbations in
//!                      both scenarios, so the difference interval is far
//!                      tighter than differencing the two separate bands
//!                      (enables --draws 1000 if --draws was not given)
//!   --synthetic N      use an N-system synthetic fleet instead of a CSV
//!   --stream           pipelined chunked ingestion: the next chunk is parsed
//!                      on a background thread while the pool assesses the
//!                      current one; memory bounded by --chunk-rows (at most
//!                      two chunks resident), not fleet size
//!   --chunk-rows N     rows per streamed chunk (default 8192)
//!   --shards N         parallel byte-range ingest (requires --stream and a
//!                      systems CSV): the file is split into N record-aligned
//!                      byte ranges parsed by N workers, merged in file order
//!                      — results bit-identical to a serial read
//! top500-carbon sweep-template              print the scenario CSV template
//! top500-carbon serve [systems.csv] [--addr H:P --synthetic N --workers N
//!                     --serve-workers N --queue-depth N --timeout-ms N --cold]
//!                                           resident JSONL/TCP assessment server
//!                                           over a warm easyc::FleetState
//! top500-carbon query --addr H:P <op>       one request against a running server
//!                                           (status / assess / sweep / compare /
//!                                           invalidate / shutdown)
//! ```

use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::process::ExitCode;

use top500_carbon::analysis::fleet::{
    render_deltas, render_sweep, summarize_slices, summarize_stream,
};
use top500_carbon::analysis::report::{run_study, SweepCsvWriter};
use top500_carbon::easyc::{
    Assessment, DrawPlan, FleetState, Interval, PartialAssessment, ScenarioDelta, ScenarioMatrix,
};
use top500_carbon::frame;
use top500_carbon::serve::{self, ServeConfig};
use top500_carbon::top500::io::{export_csv, import_csv, stream_csv, COLUMNS};
use top500_carbon::top500::list::Top500List;
use top500_carbon::top500::stream::{FleetChunks, Prefetched, ShardedCsvReader, SyntheticChunks};
use top500_carbon::top500::synthetic::{generate_full, SyntheticConfig};

const DEFAULT_SEED: u64 = 0x5EED_CAFE;
const DEFAULT_CHUNK_ROWS: usize = 8192;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("study") => cmd_study(args.get(1).map(Path::new)),
        Some("assess") => match args.get(1) {
            Some(path) => cmd_assess(Path::new(path)),
            None => usage("assess requires a CSV path"),
        },
        Some("template") => cmd_template(),
        Some("figures") => match args.get(1) {
            Some(dir) => cmd_figures(Path::new(dir)),
            None => usage("figures requires an output directory"),
        },
        Some("sweep") => match args.get(1) {
            Some(path) => cmd_sweep(Path::new(path), &args[2..]),
            None => usage("sweep requires a scenarios CSV path"),
        },
        Some("sweep-template") => {
            print!("{}", ScenarioMatrix::csv_template());
            ExitCode::SUCCESS
        }
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some(other) => usage(&format!("unknown command `{other}`")),
        None => usage("no command given"),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}\n");
    eprintln!("usage:");
    eprintln!("  top500-carbon study [artifacts_dir]   run the full Top 500 study");
    eprintln!("  top500-carbon assess <systems.csv>    assess systems from a CSV");
    eprintln!("  top500-carbon template                print the CSV input template");
    eprintln!("  top500-carbon figures <dir>           write every figure/table CSV");
    eprintln!("  top500-carbon sweep <scenarios.csv> [systems.csv] [options]");
    eprintln!("                                        assess a scenario matrix in one session");
    eprintln!("    --workers N         session pool size");
    eprintln!("    --out results.csv   write per-(scenario, system) columnar results");
    eprintln!("                        (works with --stream: rows spill chunk-by-chunk,");
    eprintln!("                        byte-identical artifact at bounded memory)");
    eprintln!("    --draws N           Monte-Carlo fleet intervals per scenario");
    eprintln!("    --confidence L      interval confidence level in (0, 1), default 0.95");
    eprintln!("    --seed S            RNG seed for the Monte-Carlo draws, default 0");
    eprintln!("    --compare A,B       paired delta B − A over common random numbers");
    eprintln!("                        (defaults --draws to 1000 when not given)");
    eprintln!("    --synthetic N       N-system synthetic fleet instead of a CSV");
    eprintln!("    --stream            pipelined chunked ingestion (parse overlaps assess),");
    eprintln!("                        memory bounded by --chunk-rows, not fleet size");
    eprintln!("    --chunk-rows N      rows per streamed chunk (default {DEFAULT_CHUNK_ROWS})");
    eprintln!("    --shards N          parallel byte-range ingest of the systems CSV");
    eprintln!("                        (requires --stream; bit-identical to a serial read)");
    eprintln!("  top500-carbon sweep-template          print the scenario CSV template");
    eprintln!("  top500-carbon serve [systems.csv] [options]");
    eprintln!("                                        resident assessment server (JSONL/TCP)");
    eprintln!("    --addr HOST:PORT    bind address (default 127.0.0.1:0, port printed)");
    eprintln!("    --synthetic N       N-system synthetic fleet instead of a CSV (default 500)");
    eprintln!("    --workers N         per-query assessment pool size");
    eprintln!("    --serve-workers N   compute workers draining the request queue (default 2)");
    eprintln!("    --queue-depth N     bounded request queue (default 16; full → queue-full)");
    eprintln!("    --timeout-ms N      per-request reply deadline (default 30000)");
    eprintln!("    --cold              skip warming the footprint cache at startup");
    eprintln!("  top500-carbon query --addr HOST:PORT <op> [options]");
    eprintln!("                                        one request against a running server");
    eprintln!("    status | shutdown                   transport ops");
    eprintln!("    assess [--mask SPEC --scenario NAME --pue X --utilization X --aci X]");
    eprintln!("    sweep <scenarios.csv> [--out results.csv]   (CSV identical to `sweep --out`)");
    eprintln!("    compare <scenarios.csv> A,B");
    eprintln!("    invalidate --hash HEX16");
    eprintln!("    shared: --draws N --seed S --confidence L --workers N");
    ExitCode::FAILURE
}

/// Parsed `--flag value` pairs, as (name, value) in argv order.
type Flags = Vec<(String, String)>;

/// Parses `--flag value` pairs shared by `serve`/`query`, collecting
/// positionals. Returns `None` on a malformed pair.
fn parse_flags(rest: &[String]) -> Option<(Vec<String>, Flags)> {
    let mut positionals = Vec::new();
    let mut flags = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if name == "cold" || name == "raw" {
                flags.push((name.to_string(), String::new()));
            } else {
                flags.push((name.to_string(), iter.next()?.clone()));
            }
        } else {
            positionals.push(arg.clone());
        }
    }
    Some((positionals, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn cmd_serve(rest: &[String]) -> ExitCode {
    let Some((positionals, flags)) = parse_flags(rest) else {
        return usage("serve: every --flag needs a value");
    };
    if positionals.len() > 1 {
        return usage("serve takes at most one systems.csv");
    }
    let addr = flag(&flags, "addr").unwrap_or("127.0.0.1:0");
    let mut config = top500_carbon::easyc::EasyCConfig::default();
    if let Some(w) = flag(&flags, "workers") {
        match w.parse::<usize>() {
            Ok(w) if w > 0 => config.workers = w,
            _ => return usage("--workers requires a positive integer"),
        }
    }
    let state = match positionals.first() {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match FleetState::from_csv(&text, config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let n = match flag(&flags, "synthetic") {
                Some(n) => match n.parse::<u32>() {
                    Ok(n) if n > 0 => n,
                    _ => return usage("--synthetic requires a positive integer"),
                },
                None => 500,
            };
            FleetState::from_list(
                generate_full(&SyntheticConfig {
                    seed: DEFAULT_SEED,
                    n,
                    ..Default::default()
                }),
                config,
            )
        }
    };
    let mut state = state;
    if flag(&flags, "cold").is_none() {
        state.warm();
    }
    let mut serve_config = ServeConfig::default();
    if let Some(w) = flag(&flags, "serve-workers") {
        match w.parse::<usize>() {
            Ok(w) if w > 0 => serve_config.workers = w,
            _ => return usage("--serve-workers requires a positive integer"),
        }
    }
    if let Some(d) = flag(&flags, "queue-depth") {
        match d.parse::<usize>() {
            Ok(d) if d > 0 => serve_config.queue_depth = d,
            _ => return usage("--queue-depth requires a positive integer"),
        }
    }
    if let Some(ms) = flag(&flags, "timeout-ms") {
        match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => serve_config.request_timeout = std::time::Duration::from_millis(ms),
            _ => return usage("--timeout-ms requires a positive integer"),
        }
    }
    let warm = state.is_warm();
    let systems = state.len();
    let hash = state.source_hash();
    let server = match serve::spawn(state, addr, serve_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving {systems} systems on {} (source hash {hash:016x}, cache {})",
        server.addr(),
        if warm { "warm" } else { "cold" }
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    println!("server shut down");
    ExitCode::SUCCESS
}

fn cmd_query(rest: &[String]) -> ExitCode {
    let Some((positionals, flags)) = parse_flags(rest) else {
        return usage("query: every --flag needs a value");
    };
    let Some(addr) = flag(&flags, "addr") else {
        return usage("query requires --addr HOST:PORT");
    };
    let Some(op) = positionals.first().map(String::as_str) else {
        return usage("query requires an op (status/assess/sweep/compare/invalidate/shutdown)");
    };
    let mut request = serve::json::Obj::new().field_str("op", op);
    // Shared numeric knobs, forwarded verbatim when given.
    for key in ["draws", "seed", "workers"] {
        if let Some(v) = flag(&flags, key) {
            match v.parse::<usize>() {
                Ok(n) => request = request.field_int(key, n),
                Err(_) => return usage(&format!("--{key} requires an integer")),
            }
        }
    }
    for (key, field) in [
        ("confidence", "confidence"),
        ("pue", "pue"),
        ("utilization", "utilization"),
        ("aci", "aci"),
    ] {
        if let Some(v) = flag(&flags, key) {
            match v.parse::<f64>() {
                Ok(x) => request = request.field_num(field, x),
                Err(_) => return usage(&format!("--{key} requires a number")),
            }
        }
    }
    for key in ["mask", "scenario", "hash"] {
        if let Some(v) = flag(&flags, key) {
            request = request.field_str(key, v);
        }
    }
    match op {
        "status" | "assess" | "invalidate" | "shutdown" => {}
        "sweep" | "compare" => {
            let Some(path) = positionals.get(1) else {
                return usage(&format!("{op} requires a scenarios CSV path"));
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            request = request.field_str("matrix_csv", &text);
            if op == "compare" {
                let Some((a, b)) = positionals.get(2).and_then(|pair| pair.split_once(',')) else {
                    return usage("compare requires two scenario names as A,B");
                };
                request = request.field_str("baseline", a).field_str("variant", b);
            }
        }
        other => return usage(&format!("unknown query op `{other}`")),
    }
    let mut client = match serve::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let raw = match client.request_raw(&request.finish()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match serve::json::parse(&raw) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: unparseable response ({e}): {raw}");
            return ExitCode::FAILURE;
        }
    };
    let ok = parsed.get("ok").and_then(serve::json::Value::as_bool) == Some(true);
    if let Some(out) = flag(&flags, "out") {
        // `sweep --out` spills the per-(scenario, system) CSV — the same
        // bytes the CLI `sweep --out` writes, which CI diffs.
        let Some(csv) = parsed.get("csv").and_then(serve::json::Value::as_str) else {
            eprintln!("error: response carries no csv field: {raw}");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(out, csv) {
            eprintln!("error: could not write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote per-system scenario results to {out}");
        return ExitCode::SUCCESS;
    }
    println!("{raw}");
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs a scenario matrix over a system list (a CSV, or a synthetic
/// fleet) in one interleaved assessment session. In-memory mode can write
/// the full columnar results; `--stream` folds chunks incrementally so
/// memory stays bounded by `--chunk-rows` regardless of fleet size.
fn cmd_sweep(scenarios_path: &Path, rest: &[String]) -> ExitCode {
    let text = match std::fs::read_to_string(scenarios_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", scenarios_path.display());
            return ExitCode::FAILURE;
        }
    };
    let matrix = match ScenarioMatrix::from_csv(&text) {
        Ok(m) if !m.is_empty() => m,
        Ok(_) => {
            eprintln!("error: scenario matrix is empty");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out_path: Option<&str> = None;
    let mut systems_path: Option<&str> = None;
    let mut workers: usize = top500_carbon::parallel::default_workers();
    let mut stream = false;
    let mut chunk_rows = DEFAULT_CHUNK_ROWS;
    let mut shards: Option<usize> = None;
    let mut synthetic_n: Option<u32> = None;
    let mut plan = DrawPlan::new(0);
    let mut draws_given = false;
    let mut compare: Option<(String, String)> = None;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            match iter.next() {
                Some(p) => out_path = Some(p),
                None => return usage("--out requires a path"),
            }
        } else if arg == "--workers" {
            match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers = n,
                _ => return usage("--workers requires a positive integer"),
            }
        } else if arg == "--stream" {
            stream = true;
        } else if arg == "--chunk-rows" {
            match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => chunk_rows = n,
                _ => return usage("--chunk-rows requires a positive integer"),
            }
        } else if arg == "--shards" {
            match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => shards = Some(n),
                _ => return usage("--shards requires a positive integer"),
            }
        } else if arg == "--synthetic" {
            match iter.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => synthetic_n = Some(n),
                _ => return usage("--synthetic requires a positive integer"),
            }
        } else if arg == "--draws" {
            match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => {
                    plan.draws = n;
                    draws_given = true;
                }
                _ => return usage("--draws requires an integer"),
            }
        } else if arg == "--confidence" {
            match iter.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(level) if level > 0.0 && level < 1.0 => plan.level = level,
                _ => return usage("--confidence requires a level strictly between 0 and 1"),
            }
        } else if arg == "--seed" {
            match iter.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(seed) => plan.seed = seed,
                _ => return usage("--seed requires an unsigned integer"),
            }
        } else if arg == "--compare" {
            match iter.next().and_then(|pair| {
                let (a, b) = pair.split_once(',')?;
                (!a.is_empty() && !b.is_empty()).then(|| (a.to_string(), b.to_string()))
            }) {
                Some(pair) => compare = Some(pair),
                None => return usage("--compare requires two scenario names as A,B"),
            }
        } else {
            systems_path = Some(arg);
        }
    }
    if systems_path.is_some() && synthetic_n.is_some() {
        return usage("pass either systems.csv or --synthetic N, not both");
    }
    if shards.is_some() {
        if !stream {
            return usage("--shards requires --stream");
        }
        if systems_path.is_none() {
            return usage(
                "--shards splits a systems CSV byte range; it cannot apply to --synthetic",
            );
        }
    }
    if let Some((a, b)) = &compare {
        for name in [a, b] {
            if !matrix.scenarios().iter().any(|s| &s.name == name) {
                eprintln!("error: --compare scenario `{name}` is not in the matrix");
                return ExitCode::FAILURE;
            }
        }
        // A comparison needs paired draws; pick a sensible default when
        // the user asked for the delta but said nothing about draws — an
        // explicit `--draws 0` contradicts `--compare` and is rejected.
        if plan.draws == 0 {
            if draws_given {
                return usage("--compare needs --draws > 0");
            }
            plan.draws = 1000;
        }
    }
    if stream {
        let synthetic = SyntheticConfig {
            seed: DEFAULT_SEED,
            n: synthetic_n.unwrap_or(500),
            ..Default::default()
        };
        // The next chunk parses on a background thread while the pool
        // assesses the current one; at most two chunks are ever resident.
        // With --shards, N byte-range workers parse concurrently instead,
        // merged in file order — same records, same results.
        return match systems_path {
            Some(p) => {
                if let Some(shards) = shards {
                    let reader = match ShardedCsvReader::open(Path::new(p), shards, chunk_rows) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("error: cannot split {p}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    return run_stream_sweep(
                        reader,
                        &matrix,
                        workers,
                        plan,
                        compare.as_ref(),
                        out_path,
                        &format!("{shards}-shard byte-range ingest"),
                    );
                }
                let file = match File::open(p) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("error: cannot open {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                run_stream_sweep(
                    Prefetched::new(stream_csv(BufReader::new(file), chunk_rows)),
                    &matrix,
                    workers,
                    plan,
                    compare.as_ref(),
                    out_path,
                    "prefetched ingest",
                )
            }
            None => run_stream_sweep(
                Prefetched::new(SyntheticChunks::new(synthetic, chunk_rows)),
                &matrix,
                workers,
                plan,
                compare.as_ref(),
                out_path,
                "prefetched ingest",
            ),
        };
    }
    let list: Top500List = match systems_path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match import_csv(&text) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => generate_full(&SyntheticConfig {
            seed: DEFAULT_SEED,
            n: synthetic_n.unwrap_or(500),
            ..Default::default()
        }),
    };
    println!(
        "sweeping {} scenarios over {} systems ({} workers, one session)\n",
        matrix.len(),
        list.len(),
        workers
    );
    let output = Assessment::of(&list)
        .scenarios(&matrix)
        .workers(workers)
        .draw_plan(plan)
        .run();
    println!("{}", render_sweep(&summarize_slices(output.slices())));
    if plan.draws > 0 {
        let names: Vec<&str> = output
            .slices()
            .iter()
            .map(|s| s.scenario.name.as_str())
            .collect();
        print_intervals(&names, output.intervals(), output.embodied_intervals());
    }
    if let Some((baseline, variant)) = &compare {
        match output.compare(baseline, variant) {
            Some(delta) => print_delta(&delta, plan.level),
            None => {
                eprintln!("error: --compare found no paired draws for {baseline},{variant}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(path, frame::csv::write(&output.to_frame())) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote per-system scenario results to {path}");
    }
    ExitCode::SUCCESS
}

/// Drives the incremental session over any chunked source and renders the
/// folded sweep; with `out_path`, per-(scenario, system) rows spill to
/// disk chunk-by-chunk and assemble into the same columnar CSV the
/// in-memory sweep writes.
fn run_stream_sweep<S: FleetChunks>(
    source: S,
    matrix: &ScenarioMatrix,
    workers: usize,
    plan: DrawPlan,
    compare: Option<&(String, String)>,
    out_path: Option<&str>,
    ingest: &str,
) -> ExitCode {
    println!(
        "streaming sweep: {} scenarios, {} workers, folded per chunk ({ingest})\n",
        matrix.len(),
        workers
    );
    let mut writer = match out_path {
        Some(path) => match SweepCsvWriter::create(path, matrix.len()) {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!("error: could not create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let session = Assessment::stream(source)
        .scenarios(matrix)
        .workers(workers)
        .draw_plan(plan);
    let session = match writer.as_mut() {
        Some(writer) => session.rows(|block| writer.append(&block)),
        None => session,
    };
    let output = match session.run() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(writer) = writer {
        match writer.finish() {
            Ok(path) => println!("wrote per-system scenario results to {}\n", path.display()),
            Err(e) => {
                eprintln!("error: could not write streamed results: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{}", render_sweep(&summarize_stream(&output)));
    if plan.draws > 0 {
        let names: Vec<&str> = output
            .slices()
            .iter()
            .map(|s| s.scenario.name.as_str())
            .collect();
        let op: Vec<Option<Interval>> = output.slices().iter().map(|s| s.interval).collect();
        let emb: Vec<Option<Interval>> = output
            .slices()
            .iter()
            .map(|s| s.embodied_interval)
            .collect();
        print_intervals(&names, &op, &emb);
    }
    if let Some((baseline, variant)) = compare {
        match output.compare(baseline, variant) {
            Some(delta) => print_delta(&delta, plan.level),
            None => {
                eprintln!("error: --compare found no paired draws for {baseline},{variant}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "{} systems in {} chunks; peak resident chunk: {} rows",
        output.systems(),
        output.chunks(),
        output.peak_chunk_rows()
    );
    ExitCode::SUCCESS
}

/// Renders one paired scenario delta (the `--compare` panel) through the
/// shared `analysis::fleet::render_deltas` table — the CRN construction
/// pairs both scenarios' draws, so these bands are tighter than the
/// difference of the two per-scenario intervals printed above.
fn print_delta(delta: &ScenarioDelta, level: f64) {
    println!(
        "paired delta, MT CO2e ({:.0}% CI, common random numbers):",
        level * 100.0
    );
    println!("{}", render_deltas(std::slice::from_ref(delta)));
}

/// Renders per-scenario fleet intervals (operational + embodied).
fn print_intervals(names: &[&str], op: &[Option<Interval>], emb: &[Option<Interval>]) {
    println!("fleet intervals (MT CO2e):");
    for (name, (op, emb)) in names.iter().zip(op.iter().zip(emb)) {
        let fmt = |iv: &Option<Interval>| match iv {
            Some(iv) => format!("{:.0} [{:.0}, {:.0}]", iv.point, iv.lo, iv.hi),
            None => "—".to_string(),
        };
        println!("  {:>16}: op {}  emb {}", name, fmt(op), fmt(emb));
    }
    println!();
}

fn cmd_study(artifacts: Option<&Path>) -> ExitCode {
    let report = run_study(DEFAULT_SEED);
    println!("{}", report.summary());
    if let Some(dir) = artifacts {
        if let Err(e) = report.write_artifacts(dir) {
            eprintln!("error: could not write artifacts to {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        println!("wrote figure artifacts to {}", dir.display());
    }
    ExitCode::SUCCESS
}

fn cmd_assess(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let list = match import_csv(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let footprints = Assessment::of(&list).run().into_footprints();
    println!(
        "{:<6} {:<28} {:>14} {:>14}  notes",
        "rank", "name", "op (MT/yr)", "emb (MT)"
    );
    // Fleet totals and coverage go through the one mergeable fold state
    // every other path uses, so the CLI cannot drift from the sessions.
    let mut partial = PartialAssessment::identity(0);
    partial.absorb(0, &footprints);
    let totals = partial.finish();
    for (sys, fp) in list.systems().iter().zip(&footprints) {
        let note = match (&fp.operational, &fp.embodied) {
            (Ok(_), Ok(_)) => String::new(),
            (Err(e), Ok(_)) | (Ok(_), Err(e)) => e.to_string(),
            (Err(a), Err(_)) => a.to_string(),
        };
        println!(
            "{:<6} {:<28} {:>14} {:>14}  {}",
            sys.rank,
            sys.name.as_deref().unwrap_or(""),
            fp.operational_mt()
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "—".into()),
            fp.embodied_mt()
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "—".into()),
            note
        );
    }
    println!(
        "\n{} systems; coverage {} operational / {} embodied",
        totals.total, totals.op_covered, totals.emb_covered
    );
    println!(
        "totals: {:.0} MT CO2e/yr operational, {:.0} MT CO2e embodied",
        totals.operational_mt, totals.embodied_mt
    );
    ExitCode::SUCCESS
}

fn cmd_template() -> ExitCode {
    println!("# Fill one row per system; leave unknown fields empty.");
    println!("# Required: rank, rmax_tflops. Everything else improves fidelity.");
    println!("{}", COLUMNS.join(","));
    // A worked example row to copy from: a masked synthetic system.
    let demo = generate_full(&SyntheticConfig {
        n: 1,
        seed: DEFAULT_SEED,
        ..Default::default()
    });
    print!(
        "{}",
        export_csv(&demo)
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n")
    );
    println!();
    ExitCode::SUCCESS
}

fn cmd_figures(dir: &Path) -> ExitCode {
    let report = run_study(DEFAULT_SEED);
    match report.write_artifacts(dir) {
        Ok(()) => {
            println!("wrote all figure/table artifacts to {}", dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
