//! Scenario-diversity workloads through the unified assessment session.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```
//!
//! Builds a matrix of data scenarios — ground truth, degraded-availability
//! variants, and site-knowledge overrides — and assesses the synthetic
//! Top 500 under all of them in ONE session: the metric extraction runs
//! once and is shared, masks apply as zero-copy `FleetView` lenses (no
//! record clones), every (scenario × chunk) work item interleaves on one
//! thread pool, and each scenario's results come back typed, columnar and
//! with a Monte-Carlo fleet interval.

use top500_carbon::analysis::fleet::{render_sweep, summarize_slices};
use top500_carbon::analysis::sensitivity;
use top500_carbon::easyc::{
    Assessment, DataScenario, MetricBit, MetricMask, OverrideSet, ScenarioMatrix,
};
use top500_carbon::top500::synthetic::{generate_full, SyntheticConfig};

fn main() {
    let list = generate_full(&SyntheticConfig {
        seed: 0x5EED_CAFE,
        ..Default::default()
    });

    let matrix = ScenarioMatrix::new()
        .with(DataScenario::full("full"))
        .with(DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ))
        .with(DataScenario::masked(
            "no-structure",
            MetricMask::ALL
                .without(MetricBit::Nodes)
                .without(MetricBit::Gpus)
                .without(MetricBit::Cpus),
        ))
        .with(DataScenario::masked(
            "anonymous-sites",
            MetricMask::ALL.without(MetricBit::Location),
        ))
        .with(
            DataScenario::full("site-pue-1.1").with_overrides(OverrideSet {
                pue: Some(1.1),
                ..OverrideSet::NONE
            }),
        )
        .with(
            DataScenario::full("clean-grid-50g").with_overrides(OverrideSet {
                aci_g_per_kwh: Some(50.0),
                ..OverrideSet::NONE
            }),
        );

    let output = Assessment::of(&list)
        .scenarios(&matrix)
        .uncertainty(400)
        .confidence(0.9)
        .seed(7)
        .run();

    println!(
        "== scenario sweep: {} scenarios x {} systems, one session ==\n",
        matrix.len(),
        list.len()
    );
    println!("{}", render_sweep(&summarize_slices(output.slices())));

    // Fleet-total operational AND embodied intervals came out of the same
    // session run — both families share the (scenario × draw-chunk) plan.
    println!("90% fleet intervals (MT CO2e):");
    for (slice, (op, emb)) in output
        .slices()
        .iter()
        .zip(output.intervals().iter().zip(output.embodied_intervals()))
    {
        let render = |iv: &Option<top500_carbon::easyc::Interval>| match iv {
            Some(iv) => format!("{:>9.0} [{:>9.0}, {:>9.0}]", iv.point, iv.lo, iv.hi),
            None => "        —".to_string(),
        };
        println!(
            "  {:>14}: op {}  emb {}",
            slice.scenario.name,
            render(op),
            render(emb)
        );
    }
    println!();

    // Scenario sensitivity straight off the session slices: what does
    // losing every measured power number cost the fleet estimate?
    let report =
        sensitivity::between(&output, "full", "no-power", false).expect("both scenarios present");
    println!("operational sensitivity to losing measured power:");
    println!(
        "  fleet total {:.0} -> {:.0} MT CO2e ({:+.1} %)",
        report.baseline_total_mt,
        report.enriched_total_mt,
        report.relative_change() * 100.0
    );
    println!(
        "  largest single-system change: {:+.0} / {:+.0} MT",
        report.max_increase_mt, report.max_decrease_mt
    );

    // First-class scenario comparison: every scenario of the matrix saw
    // IDENTICAL per-system perturbations (common random numbers — the
    // DrawPlan keys its RNG streams by (system, draw), never by scenario),
    // so the paired difference interval is far tighter than differencing
    // the two independent bands printed above.
    println!("\npaired 90% deltas vs `full` (common random numbers):");
    for variant in ["no-power", "site-pue-1.1", "clean-grid-50g"] {
        let delta = output.compare("full", variant).expect("scenarios present");
        let op = delta.operational.expect("operational coverage");
        let naive = top500_carbon::easyc::Interval::independent_difference(
            &output.interval(variant).expect("interval"),
            &output.interval("full").expect("interval"),
        );
        println!(
            "  {:>14}: op {:+9.0} [{:+9.0}, {:+9.0}]  (naive band width {:.0}x wider)",
            variant,
            op.point,
            op.lo,
            op.hi,
            naive.width() / op.width().max(1e-9),
        );
    }

    // The columnar view feeds straight into the frame machinery.
    let frame = output.to_frame();
    println!(
        "\ncolumnar results: {} rows x {} columns (scenario, rank, footprints, provenance)",
        frame.len(),
        frame.width()
    );
}
