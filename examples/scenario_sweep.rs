//! Scenario-diversity workloads through the staged batch engine.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```
//!
//! Builds a matrix of data scenarios — ground truth, degraded-availability
//! variants, and site-knowledge overrides — and assesses the synthetic
//! Top 500 under all of them in ONE batch pass: the metric extraction runs
//! once and is shared, masks and overrides apply inside the estimator
//! stages, and every scenario's results come back both typed and columnar.

use top500_carbon::analysis::fleet::{render_sweep, summarize_output};
use top500_carbon::analysis::sensitivity;
use top500_carbon::easyc::{
    BatchEngine, DataScenario, MetricBit, MetricMask, OverrideSet, ScenarioMatrix,
};
use top500_carbon::top500::synthetic::{generate_full, SyntheticConfig};

fn main() {
    let list = generate_full(&SyntheticConfig {
        seed: 0x5EED_CAFE,
        ..Default::default()
    });

    let matrix = ScenarioMatrix::new()
        .with(DataScenario::full("full"))
        .with(DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ))
        .with(DataScenario::masked(
            "no-structure",
            MetricMask::ALL
                .without(MetricBit::Nodes)
                .without(MetricBit::Gpus)
                .without(MetricBit::Cpus),
        ))
        .with(DataScenario::masked(
            "anonymous-sites",
            MetricMask::ALL.without(MetricBit::Location),
        ))
        .with(
            DataScenario::full("site-pue-1.1").with_overrides(OverrideSet {
                pue: Some(1.1),
                ..OverrideSet::NONE
            }),
        )
        .with(
            DataScenario::full("clean-grid-50g").with_overrides(OverrideSet {
                aci_g_per_kwh: Some(50.0),
                ..OverrideSet::NONE
            }),
        );

    let engine = BatchEngine::new();
    let output = engine.assess_matrix(&list, &matrix);

    println!(
        "== scenario sweep: {} scenarios x {} systems, one batch pass ==\n",
        matrix.len(),
        list.len()
    );
    println!("{}", render_sweep(&summarize_output(&output)));

    // Scenario sensitivity straight off the batch slices: what does losing
    // every measured power number cost the fleet estimate?
    let full = output.slice("full").expect("full scenario present");
    let no_power = output.slice("no-power").expect("no-power scenario present");
    let report = sensitivity::from_footprints(&full.footprints, &no_power.footprints, false);
    println!("operational sensitivity to losing measured power:");
    println!(
        "  fleet total {:.0} -> {:.0} MT CO2e ({:+.1} %)",
        report.baseline_total_mt,
        report.enriched_total_mt,
        report.relative_change() * 100.0
    );
    println!(
        "  largest single-system change: {:+.0} / {:+.0} MT",
        report.max_increase_mt, report.max_decrease_mt
    );

    // The columnar view feeds straight into the frame machinery.
    let frame = output.to_frame();
    println!(
        "\ncolumnar results: {} rows x {} columns (scenario, rank, footprints, provenance)",
        frame.len(),
        frame.width()
    );
}
