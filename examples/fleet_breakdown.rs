//! Fleet analytics: where the Top 500's carbon sits, by country, vendor
//! and accelerator family, plus the emergent list-turnover simulation.
//!
//! ```text
//! cargo run --release --example fleet_breakdown
//! ```

use top500_carbon::analysis::fleet::{breakdown, concentration, Dimension};
use top500_carbon::analysis::turnover::{simulate, TurnoverConfig};
use top500_carbon::analysis::StudyPipeline;
use top500_carbon::easyc::Assessment;

fn print_breakdown(title: &str, shares: &[top500_carbon::analysis::fleet::GroupShare]) {
    println!("{title}");
    println!(
        "{:<34} {:>7} {:>14} {:>14}",
        "group", "systems", "op (kMT/yr)", "emb (kMT)"
    );
    for share in shares.iter().take(10) {
        println!(
            "{:<34} {:>7} {:>14.1} {:>14.1}",
            share.key,
            share.systems,
            share.operational_mt / 1e3,
            share.embodied_mt / 1e3
        );
    }
    println!(
        "top-3 concentration: {:.0}% of fleet operational carbon\n",
        concentration(shares, 3) * 100.0
    );
}

fn main() {
    let out = StudyPipeline::new(500, 0x5EED_CAFE).run();
    let footprints = Assessment::of(&out.full).run().into_footprints();

    print_breakdown(
        "== Fleet carbon by country (synthetic ground truth) ==",
        &breakdown(&out.full, &footprints, Dimension::Country),
    );
    print_breakdown(
        "== Fleet carbon by vendor ==",
        &breakdown(&out.full, &footprints, Dimension::Vendor),
    );
    print_breakdown(
        "== Fleet carbon by accelerator ==",
        &breakdown(&out.full, &footprints, Dimension::Accelerator),
    );

    println!("== List-turnover simulation (mechanism behind Figure 10) ==");
    let run = simulate(&TurnoverConfig::default());
    println!(
        "{:>6} {:>16} {:>14} {:>16}",
        "cycle", "op (kMT/yr)", "emb (kMT)", "Rmax (EFlops)"
    );
    for c in &run.cycles {
        println!(
            "{:>6} {:>16.0} {:>14.0} {:>16.2}",
            c.cycle,
            c.operational_mt / 1e3,
            c.embodied_mt / 1e3,
            c.rmax_tflops / 1e6
        );
    }
    println!(
        "\nemergent growth per cycle: operational {:+.1}%, embodied {:+.1}%",
        run.operational_growth_per_cycle() * 100.0,
        run.embodied_growth_per_cycle() * 100.0
    );
    println!("paper's observed turnover rates: +5%/cycle operational, +1%/cycle embodied");
}
