//! Quickstart: estimate the carbon footprint of one HPC system with EasyC.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Shows the "less than a person-hour per year" workflow the paper argues
//! for: fill in the few metrics you know, get operational and embodied
//! carbon with provenance.

use top500_carbon::easyc::{EasyC, SystemFootprint};
use top500_carbon::top500::SystemRecord;

fn main() {
    // Describe your system with whatever you know. Missing fields are fine;
    // EasyC fills them with priors or reports why it cannot estimate.
    let mut system = SystemRecord::bare(42, 15_000.0, 22_000.0);
    system.name = Some("campus-cluster".to_string());
    system.country = Some("United States".to_string());
    system.year = Some(2023);
    system.processor = Some("AMD EPYC 9654 96C 2.4GHz".to_string());
    system.total_cores = Some(98_304); // 512 dual-socket nodes
    system.node_count = Some(512);
    system.accelerator = Some("NVIDIA H100 SXM5".to_string());
    system.accelerator_count = Some(2_048);
    system.memory_gb = Some(512.0 * 1024.0);
    system.ssd_gb = Some(2.0e6);

    let tool = EasyC::new();
    let footprint: SystemFootprint = tool.assess(&system);

    println!(
        "== EasyC quickstart: {} ==",
        system.name.as_deref().unwrap()
    );
    match &footprint.operational {
        Ok(op) => {
            println!("operational carbon : {:>10.0} MT CO2e/yr", op.mt_co2e);
            println!(
                "  power            : {:>10.0} kW (via {})",
                op.power_kw,
                op.path.label()
            );
            println!("  grid intensity   : {:>10.0} gCO2e/kWh", op.aci.value());
            println!("  PUE x util       : {:.2} x {:.2}", op.pue, op.utilization);
        }
        Err(e) => println!("operational carbon : not estimable ({e})"),
    }
    match &footprint.embodied {
        Ok(emb) => {
            println!("embodied carbon    : {:>10.0} MT CO2e", emb.mt_co2e);
            let b = emb.breakdown;
            println!(
                "  accelerators     : {:>10.0} MT",
                b.accelerator_kg / 1000.0
            );
            println!("  CPUs             : {:>10.0} MT", b.cpu_kg / 1000.0);
            println!("  DRAM             : {:>10.0} MT", b.dram_kg / 1000.0);
            println!("  storage          : {:>10.0} MT", b.storage_kg / 1000.0);
            println!(
                "  chassis+fabric   : {:>10.0} MT",
                (b.chassis_kg + b.interconnect_kg) / 1000.0
            );
            println!(
                "  annualized (5 y) : {:>10.0} MT CO2e/yr",
                tool.annualized_embodied_mt(&footprint).unwrap()
            );
        }
        Err(e) => println!("embodied carbon    : not estimable ({e})"),
    }
}
