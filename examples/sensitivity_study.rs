//! Sensitivity of the assessment to adding public data (Figure 9), plus
//! interval-backed scenario deltas from one CRN session: the appendix
//! gives the paper's point estimates, the session run shows how much of a
//! between-scenario claim survives once model uncertainty is attached —
//! and how the common-random-numbers pairing keeps the delta band tight.
//!
//! ```text
//! cargo run --release --example sensitivity_study
//! ```

use top500_carbon::analysis::figures::Fig9;
use top500_carbon::analysis::sensitivity;
use top500_carbon::easyc::{
    Assessment, DataScenario, Interval, MetricBit, MetricMask, ScenarioMatrix,
};
use top500_carbon::top500::synthetic::{generate_full, SyntheticConfig};

fn main() {
    let rows = top500_carbon::top500::appendix::load();
    let fig = Fig9::from_appendix(&rows);

    println!("Figure 9 — effect of adding public info (Baseline -> +PublicInfo)\n");
    let op = &fig.operational;
    println!("operational:");
    println!("  baseline total : {:>10.0} MT", op.baseline_total_mt);
    println!("  enriched total : {:>10.0} MT", op.enriched_total_mt);
    println!(
        "  net change     : {:>10.0} MT ({:+.2}%)",
        op.total_change_mt(),
        op.relative_change() * 100.0
    );
    println!("  newly covered  : {:>10} systems", op.newly_covered);
    println!(
        "  largest single-system change: {:+.0} / {:+.0} MT",
        op.max_increase_mt, op.max_decrease_mt
    );

    let emb = &fig.embodied;
    println!("\nembodied:");
    println!("  baseline total : {:>10.0} MT", emb.baseline_total_mt);
    println!("  enriched total : {:>10.0} MT", emb.enriched_total_mt);
    println!(
        "  net change     : {:>10.0} MT ({:+.1}%)",
        emb.total_change_mt(),
        emb.relative_change() * 100.0
    );
    println!("  newly covered  : {:>10} systems", emb.newly_covered);

    // Top movers, the systems Figure 9's spikes correspond to.
    let mut movers: Vec<_> = fig
        .operational
        .diffs
        .iter()
        .filter_map(|d| d.diff_mt.map(|v| (d.rank, v)))
        .collect();
    movers.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    println!("\nlargest operational movers (rank, change in MT):");
    for (rank, diff) in movers.iter().take(8) {
        let name = rows
            .iter()
            .find(|r| r.rank == *rank)
            .and_then(|r| r.name.clone())
            .unwrap_or_else(|| "(unnamed)".to_string());
        println!("  #{rank:<4} {name:<28} {diff:>+9.0}");
    }

    // Delta bands: the appendix gives points; a CRN session quantifies how
    // certain the between-scenario change itself is. Both scenarios replay
    // the same per-system perturbations, so the paired band on the
    // difference is dramatically tighter than differencing the two
    // independent per-scenario bands.
    let list = generate_full(&SyntheticConfig {
        seed: 0x5EED_CAFE,
        ..Default::default()
    });
    let matrix = ScenarioMatrix::new()
        .with(DataScenario::full("full"))
        .with(DataScenario::masked(
            "no-power",
            MetricMask::ALL
                .without(MetricBit::PowerKw)
                .without(MetricBit::AnnualEnergy),
        ));
    let output = Assessment::of(&list)
        .scenarios(&matrix)
        .uncertainty(2000)
        .confidence(0.95)
        .seed(0x5EED_CAFE)
        .run();
    let report =
        sensitivity::between(&output, "full", "no-power", false).expect("both scenarios present");
    let band = report.delta_interval.expect("session ran with draws");
    let naive = Interval::independent_difference(
        &output.interval("no-power").expect("interval"),
        &output.interval("full").expect("interval"),
    );
    println!("\nsynthetic 500, losing every measured power number (95% bands):");
    println!(
        "  operational delta: {:+.0} MT  paired band [{:+.0}, {:+.0}]",
        band.point, band.lo, band.hi
    );
    println!(
        "  naive (independent-band) difference would span [{:+.0}, {:+.0}] — {:.0}x wider",
        naive.lo,
        naive.hi,
        naive.width() / band.width().max(1e-9)
    );
}
