//! Sensitivity of the assessment to adding public data (Figure 9).
//!
//! ```text
//! cargo run --release --example sensitivity_study
//! ```

use top500_carbon::analysis::figures::Fig9;

fn main() {
    let rows = top500_carbon::top500::appendix::load();
    let fig = Fig9::from_appendix(&rows);

    println!("Figure 9 — effect of adding public info (Baseline -> +PublicInfo)\n");
    let op = &fig.operational;
    println!("operational:");
    println!("  baseline total : {:>10.0} MT", op.baseline_total_mt);
    println!("  enriched total : {:>10.0} MT", op.enriched_total_mt);
    println!(
        "  net change     : {:>10.0} MT ({:+.2}%)",
        op.total_change_mt(),
        op.relative_change() * 100.0
    );
    println!("  newly covered  : {:>10} systems", op.newly_covered);
    println!(
        "  largest single-system change: {:+.0} / {:+.0} MT",
        op.max_increase_mt, op.max_decrease_mt
    );

    let emb = &fig.embodied;
    println!("\nembodied:");
    println!("  baseline total : {:>10.0} MT", emb.baseline_total_mt);
    println!("  enriched total : {:>10.0} MT", emb.enriched_total_mt);
    println!(
        "  net change     : {:>10.0} MT ({:+.1}%)",
        emb.total_change_mt(),
        emb.relative_change() * 100.0
    );
    println!("  newly covered  : {:>10} systems", emb.newly_covered);

    // Top movers, the systems Figure 9's spikes correspond to.
    let mut movers: Vec<_> = fig
        .operational
        .diffs
        .iter()
        .filter_map(|d| d.diff_mt.map(|v| (d.rank, v)))
        .collect();
    movers.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    println!("\nlargest operational movers (rank, change in MT):");
    for (rank, diff) in movers.iter().take(8) {
        let name = rows
            .iter()
            .find(|r| r.rank == *rank)
            .and_then(|r| r.name.clone())
            .unwrap_or_else(|| "(unnamed)".to_string());
        println!("  #{rank:<4} {name:<28} {diff:>+9.0}");
    }
}
