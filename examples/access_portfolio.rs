//! The paper's future-work scenario: "we would like to model carbon
//! footprint for all of the US National Science Foundation ACCESS
//! scientific computing sites" — a portfolio assessment of a federation of
//! research computing systems, with per-site reports and a fleet CI.
//!
//! ```text
//! cargo run --release --example access_portfolio
//! ```

use top500_carbon::analysis::aggregate::Equivalences;
use top500_carbon::easyc::{Assessment, EasyC, SystemFootprint};
use top500_carbon::top500::list::Top500List;
use top500_carbon::top500::SystemRecord;

/// A hand-built portfolio in the spirit of the ACCESS allocation sites:
/// a few accelerated flagships and several CPU workhorses, with the kind
/// of partial information a federation actually has about its members.
fn portfolio() -> Vec<SystemRecord> {
    let mut sites = Vec::new();

    let mut s = SystemRecord::bare(1, 63_000.0, 94_000.0);
    s.name = Some("flagship-gpu".into());
    s.country = Some("United States".into());
    s.year = Some(2023);
    s.processor = Some("AMD EPYC 7763 64C 2.45GHz".into());
    s.node_count = Some(544);
    s.total_cores = Some(69_632);
    s.accelerator = Some("NVIDIA A100 SXM4 80GB".into());
    s.accelerator_count = Some(2_176);
    sites.push(s);

    let mut s = SystemRecord::bare(2, 38_000.0, 60_000.0);
    s.name = Some("capacity-cpu".into());
    s.country = Some("United States".into());
    s.year = Some(2021);
    s.processor = Some("AMD EPYC 7763 64C 2.45GHz".into());
    s.node_count = Some(1_728);
    s.total_cores = Some(221_184);
    sites.push(s);

    let mut s = SystemRecord::bare(3, 10_500.0, 15_700.0);
    s.name = Some("regional-hybrid".into());
    s.country = Some("United States".into());
    s.year = Some(2022);
    s.processor = Some("Xeon Platinum 8380 40C 2.3GHz".into());
    s.node_count = Some(484);
    s.total_cores = Some(38_720);
    s.accelerator = Some("NVIDIA H100 SXM5".into());
    s.accelerator_count = Some(320);
    sites.push(s);

    let mut s = SystemRecord::bare(4, 5_700.0, 9_000.0);
    s.name = Some("campus-condo".into());
    s.country = Some("United States".into());
    s.year = Some(2020);
    s.processor = Some("AMD EPYC 7742 64C 2.25GHz".into());
    s.total_cores = Some(128_000);
    // No node count disclosed: EasyC derives sockets from cores.
    sites.push(s);

    let mut s = SystemRecord::bare(5, 2_600.0, 4_100.0);
    s.name = Some("ai-testbed".into());
    s.country = Some("United States".into());
    s.year = Some(2024);
    s.processor = Some("NVIDIA Grace 72C 3.1GHz".into());
    s.node_count = Some(64);
    s.total_cores = Some(4_608);
    s.accelerator = Some("NVIDIA GH200 Superchip".into());
    s.accelerator_count = Some(256);
    sites.push(s);

    sites
}

fn main() {
    let list = Top500List::new(portfolio());
    let sites = list.systems();
    let tool = EasyC::new();

    println!("== ACCESS-style portfolio assessment ==\n");
    println!(
        "{:<18} {:>12} {:>14} {:>12}",
        "site", "op (MT/yr)", "emb (MT)", "power path"
    );
    let mut footprints: Vec<SystemFootprint> = Vec::new();
    for site in sites {
        let fp = tool.assess(site);
        let path = fp
            .operational
            .as_ref()
            .map(|e| e.path.label())
            .unwrap_or("n/a");
        println!(
            "{:<18} {:>12} {:>14} {:>12}",
            site.name.as_deref().unwrap_or("?"),
            fp.operational_mt()
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "—".into()),
            fp.embodied_mt()
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "—".into()),
            path
        );
        footprints.push(fp);
    }

    let op_total: f64 = footprints
        .iter()
        .filter_map(SystemFootprint::operational_mt)
        .sum();
    let emb_total: f64 = footprints
        .iter()
        .filter_map(SystemFootprint::embodied_mt)
        .sum();
    let eq = Equivalences::of_mt(op_total);
    println!("\nportfolio operational total: {op_total:.0} MT CO2e/yr");
    println!("portfolio embodied total:    {emb_total:.0} MT CO2e");
    println!(
        "equivalent to {:.0} vehicles / {:.0} homes annually",
        eq.vehicles, eq.homes
    );

    // The portfolio interval comes from the same DrawPlan-driven session
    // that serves fleet-scale sweeps.
    let iv = Assessment::of(&list)
        .uncertainty(4000)
        .confidence(0.95)
        .seed(2026)
        .run()
        .interval("default")
        .expect("portfolio estimable");
    println!(
        "95% CI on the portfolio total: {:.0} - {:.0} MT CO2e/yr",
        iv.lo, iv.hi
    );
    println!("\nTotal reporting effort: one record per site — the paper's <1 person-hour/year.");
}
