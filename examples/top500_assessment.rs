//! The headline experiment: the carbon footprint of the Top 500.
//!
//! ```text
//! cargo run --release --example top500_assessment [artifacts_dir]
//! ```
//!
//! Recomputes every aggregate of the paper from the embedded appendix
//! Table II, runs the synthetic end-to-end pipeline, prints the Figure 7
//! panels, and (optionally) writes all figure CSV artifacts.

use std::path::PathBuf;
use top500_carbon::analysis::figures::{table2_render, Fig7};
use top500_carbon::analysis::report::run_study;
use top500_carbon::easyc::Assessment;

fn main() {
    let report = run_study(0x5EED_CAFE);
    println!("{}", report.summary());

    // Fleet-total uncertainty: systematic prior error does not average out
    // across 500 systems (the paper's §V argument, quantified). One
    // DrawPlan-driven session serves the interval.
    let iv = Assessment::of(&report.pipeline.full)
        .uncertainty(2000)
        .confidence(0.95)
        .seed(0x5EED_CAFE)
        .run()
        .interval("default")
        .expect("fleet estimable");
    println!(
        "synthetic fleet operational total: {:.2} M MT (95% CI {:.2} - {:.2} M MT)\n",
        iv.point / 1e6,
        iv.lo / 1e6,
        iv.hi / 1e6
    );

    let rows = top500_carbon::top500::appendix::load();
    println!("Figure 7 — Total and average carbon footprint");
    println!("{}", Fig7::from_appendix(&rows).render());

    println!("Table II (first 10 of 500 systems)");
    let head: Vec<_> = rows.iter().take(10).cloned().collect();
    println!("{}", table2_render(&head));

    if let Some(dir) = std::env::args().nth(1) {
        let dir = PathBuf::from(dir);
        report
            .write_artifacts(&dir)
            .expect("artifact directory writable");
        println!("wrote figure artifacts to {}", dir.display());
    } else {
        println!("(pass a directory argument to write all figure CSVs)");
    }
}
