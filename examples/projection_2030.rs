//! Projection of the Top 500 footprint through 2030 (Figures 10 and 11).
//!
//! ```text
//! cargo run --release --example projection_2030
//! ```

use top500_carbon::analysis::figures;
use top500_carbon::analysis::projection::{annualized, EMB_GROWTH_PER_CYCLE, OP_GROWTH_PER_CYCLE};

fn main() {
    let rows = top500_carbon::top500::appendix::load();

    println!(
        "growth model: {:.0} systems replaced per list, 2 lists/yr",
        top500_carbon::analysis::projection::SYSTEMS_ADDED_PER_CYCLE
    );
    println!(
        "annualized growth: operational {:.1}%/yr, embodied {:.1}%/yr\n",
        annualized(OP_GROWTH_PER_CYCLE) * 100.0,
        annualized(EMB_GROWTH_PER_CYCLE) * 100.0
    );

    let p = figures::fig10(&rows);
    println!("Figure 10 — projected Top 500 carbon (thousand MT CO2e)");
    println!("{:>6} {:>14} {:>12}", "year", "operational", "embodied");
    for (op, emb) in p.operational.points.iter().zip(&p.embodied.points) {
        println!(
            "{:>6} {:>14.0} {:>12.0}",
            op.year,
            op.value / 1000.0,
            emb.value / 1000.0
        );
    }
    println!(
        "\n2030 vs 2024: operational x{:.2}, embodied x{:.2}\n",
        p.operational.overall_growth(),
        p.embodied.overall_growth()
    );

    let (op_panel, emb_panel) = figures::fig11(&rows);
    println!("Figure 11 — performance per carbon (PFlops / thousand MT CO2e)");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "year", "op projected", "op ideal", "emb projected", "emb ideal"
    );
    for i in 0..op_panel.projected.points.len() {
        println!(
            "{:>6} {:>14.2} {:>14.1} {:>14.2} {:>14.1}",
            op_panel.projected.points[i].year,
            op_panel.projected.points[i].value,
            op_panel.ideal.points[i].value,
            emb_panel.projected.points[i].value,
            emb_panel.ideal.points[i].value,
        );
    }
    println!("\nThe Dennard-era ideal (2x / 18 months) pulls away by >10x within the decade:");
    println!("perf/carbon progress cannot offset 10.3%/yr total growth.");
}
