//! A research-computing-centre sustainability report with uncertainty
//! bands — the PEARC-style single-site EasyC use case, including the
//! "gentle slope": adding a measured PUE narrows the estimate.
//!
//! ```text
//! cargo run --release --example site_report
//! ```

use top500_carbon::easyc::uncertainty::{DrawPlan, PriorUncertainty};
use top500_carbon::easyc::{EasyC, EasyCConfig};
use top500_carbon::top500::SystemRecord;

fn main() {
    // A mid-size university machine: the operator knows node counts and
    // hardware, but has no facility metering.
    let mut system = SystemRecord::bare(180, 6_200.0, 9_000.0);
    system.name = Some("uni-hpc".to_string());
    system.country = Some("Germany".to_string());
    system.year = Some(2022);
    system.processor = Some("Xeon Platinum 8380 40C 2.3GHz".to_string());
    system.total_cores = Some(61_440);
    system.node_count = Some(768);
    system.accelerator = Some("NVIDIA A100 SXM4 80GB".to_string());
    system.accelerator_count = Some(512);

    let tool = EasyC::new();
    let footprint = tool.assess(&system);
    // One DrawPlan keys every band: the site is fleet row 0, exactly as it
    // would be keyed inside an `Assessment` session.
    let plan = DrawPlan::new(4000).with_seed(2024);

    println!(
        "== {} annual sustainability report ==\n",
        system.name.as_deref().unwrap()
    );
    let op_base = footprint.operational.clone().unwrap();
    let op = plan.system_operational_interval(0, &op_base).unwrap();
    println!(
        "operational: {:>7.0} MT CO2e/yr  (95% CI {:.0} - {:.0}, priors only)",
        op.point, op.lo, op.hi
    );
    let emb = plan
        .system_embodied_interval(&footprint.embodied.unwrap())
        .unwrap();
    println!(
        "embodied:    {:>7.0} MT CO2e     (95% CI {:.0} - {:.0})",
        emb.point, emb.lo, emb.hi
    );

    // Gentle slope: the operator measures the site PUE (1.25) — one extra
    // metric, sharper estimate.
    let measured = EasyC::with_config(EasyCConfig {
        pue_override: Some(1.25),
        ..Default::default()
    });
    let plan_with_pue = plan.with_priors(PriorUncertainty {
        pue: 0.02,
        ..PriorUncertainty::default()
    });
    let op2_base = measured.assess(&system).operational.unwrap();
    let op2 = plan_with_pue
        .system_operational_interval(0, &op2_base)
        .unwrap();
    println!(
        "\nwith measured PUE=1.25 (one extra metric):\n\
         operational: {:>7.0} MT CO2e/yr  (95% CI {:.0} - {:.0})",
        op2.point, op2.lo, op2.hi
    );
    let narrow = (op2.hi - op2.lo) / (op.hi - op.lo);
    println!(
        "interval width: {:.0}% of the prior-only report",
        narrow * 100.0
    );

    println!(
        "\nfor context: {:.0} gasoline vehicles, {:.0} homes",
        top500_carbon::analysis::aggregate::Equivalences::of_mt(op.point).vehicles,
        top500_carbon::analysis::aggregate::Equivalences::of_mt(op.point).homes,
    );
}
