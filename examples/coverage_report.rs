//! Coverage study: who can be assessed, with which data (Figs 2, 4, 5, 6
//! and Table I).
//!
//! ```text
//! cargo run --release --example coverage_report
//! ```

use top500_carbon::analysis::figures::{CoverageByRange, Fig2, Fig4, Table1};
use top500_carbon::analysis::StudyPipeline;

fn main() {
    let rows = top500_carbon::top500::appendix::load();
    let out = StudyPipeline::new(500, 0x5EED_CAFE).run();

    println!("Figure 2 — structural information missing per system (synthetic top500.org)");
    println!("{}", Fig2::from_list(&out.baseline).render());

    println!("Table I — data EasyC requires vs availability");
    println!(
        "{}",
        Table1::from_lists(&out.baseline, &out.enriched).render()
    );

    println!("Figure 4 — reporting coverage by method (reference: appendix Table II)");
    println!("{}", Fig4::reference(&rows).render());

    println!("Figure 4 — reporting coverage by method (pipeline: synthetic list)");
    println!("{}", Fig4::pipeline(&out).render());

    println!("Figure 5 — operational coverage by rank range (reference)");
    println!("{}", CoverageByRange::from_appendix(&rows, false).render());

    println!("Figure 6 — embodied coverage by rank range (reference)");
    println!("{}", CoverageByRange::from_appendix(&rows, true).render());
}
